"""Command-line interface.

``repro-ho`` (or ``python -m repro.cli``) exposes eight subcommands:

* ``run``        — run one consensus instance (algorithm, scenario or
  custom fault environment) and print the outcome;
* ``experiment`` — run one of the paper-reproduction experiments
  (E1-E12) and print its report table;
* ``campaign``   — run experiments (or a declarative ``--spec`` grid)
  through the parallel campaign runner, with worker processes
  (``--jobs``), per-run timeouts and an incremental on-disk result
  cache; with ``--distributed --queue-dir`` the campaign is submitted
  to a shared-store work queue and executed by a worker fleet instead
  (add ``--autoscale`` to spawn and retire local workers automatically
  while the campaign runs);
* ``worker``     — join a worker fleet: claim batch intervals from a
  shared queue directory (lease-based, crash-safe, work-stealing) and
  execute them;
* ``supervise``  — auto-scale a local worker fleet against a queue
  directory from observed queue depth (or, with ``--scale-on-trend``,
  from the EWMA deposit-rate trend);
* ``status``     — render a live observability view of a fleet (queue
  depth plus every worker's deposited metric snapshot), once, in a
  ``--watch`` loop, or as ``--json`` for scrapers;
* ``table``      — print the analytic tables (Table 1, the related-work
  comparison and the resilience table) without running simulations;
* ``lint``       — run the ``repro-lint`` static-analysis rules
  (determinism, store-seam, schema and registry discipline) over the
  source tree; exit codes and the baseline flow are documented in its
  ``--help`` epilog.

``campaign`` exits non-zero when any run of the campaign failed or
timed out, printing the failure counts and (for distributed campaigns)
the per-worker stats summary.

The full generated reference lives at ``docs/reference/cli.md`` (kept
in sync by a test); :func:`cli_reference_markdown` is its generator.
"""

from __future__ import annotations

import argparse
import inspect
import json
import sys
import time
from typing import Dict, List, Optional

from repro.adversary import (
    BlockFaultAdversary,
    PeriodicGoodRoundAdversary,
    RandomCorruptionAdversary,
    RandomOmissionAdversary,
    ReliableAdversary,
    StaticByzantineAdversary,
)
from repro.algorithms import accepted_kwargs, available_algorithms, make_algorithm
from repro.analysis.comparison import related_work_rows, render_table, table1_rows
from repro.analysis.feasibility import resilience_table
from repro.experiments import ALL_EXPERIMENTS
from repro.runner import (
    CampaignRunner,
    CampaignSpec,
    DistributedCampaignRunner,
    ResultCache,
    RunTimeoutError,
    Supervisor,
    WorkQueue,
    campaign_report,
    fleet_status,
    make_reducer,
    reduced_campaign_report,
    run_worker,
)
from repro.runner.factories import build_predicate
from repro.simulation.backends import available_backends, get_backend, run_simulation
from repro.simulation.engine import SimulationConfig
from repro.workloads import generators


def _build_adversary(args: argparse.Namespace):
    if args.adversary == "reliable":
        return ReliableAdversary()
    if args.adversary == "omission":
        return RandomOmissionAdversary(drop_probability=args.drop_probability, seed=args.seed)
    if args.adversary == "corruption":
        inner = RandomCorruptionAdversary(
            alpha=args.alpha, value_domain=(0, 1), seed=args.seed
        )
        return PeriodicGoodRoundAdversary(inner=inner, period=args.good_round_period)
    if args.adversary == "blocks":
        inner = BlockFaultAdversary(
            faults_per_round=args.n // 2, value_domain=(0, 1), seed=args.seed
        )
        return PeriodicGoodRoundAdversary(inner=inner, period=args.good_round_period)
    if args.adversary == "byzantine":
        return StaticByzantineAdversary(
            byzantine=range(args.f), value_domain=(0, 1), seed=args.seed
        )
    raise ValueError(f"unknown adversary {args.adversary!r}")


def _build_initial_values(args: argparse.Namespace):
    if args.workload == "unanimous":
        return generators.unanimous(args.n, value=0)
    if args.workload == "split":
        return generators.split(args.n)
    if args.workload == "random":
        return generators.uniform_random(args.n, seed=args.seed)
    if args.workload == "distinct":
        return generators.distinct(args.n)
    raise ValueError(f"unknown workload {args.workload!r}")


def _cmd_run(args: argparse.Namespace) -> int:
    # Only forward the kwargs the chosen algorithm's factory accepts
    # (the registry rejects unknown ones instead of swallowing them).
    candidates = {"alpha": args.alpha, "f": args.f}
    kwargs = {k: v for k, v in candidates.items() if k in accepted_kwargs(args.algorithm)}
    algorithm = make_algorithm(args.algorithm, n=args.n, **kwargs)
    adversary = _build_adversary(args)
    initial_values = _build_initial_values(args)
    result = run_simulation(
        algorithm=algorithm,
        initial_values=initial_values,
        adversary=adversary,
        config=SimulationConfig(max_rounds=args.max_rounds, record_states=False),
        backend=args.backend,
    )
    print(result.summary())
    if args.verbose:
        print(f"corruptions per round: {result.collection.corruption_profile()}")
        print(f"metrics: {result.metrics.as_dict()}")
        for violation in result.outcome.violations:
            print(f"violation: {violation}")
    return 0 if result.outcome.safe else 1


def _cmd_experiment(args: argparse.Namespace) -> int:
    experiment_id = args.id.upper()
    if experiment_id == "ALL":
        for key in sorted(ALL_EXPERIMENTS, key=lambda k: int(k[1:])):
            print(ALL_EXPERIMENTS[key]().render())
            print()
        return 0
    driver = ALL_EXPERIMENTS.get(experiment_id)
    if driver is None:
        print(
            f"unknown experiment {args.id!r}; available: "
            f"{', '.join(sorted(ALL_EXPERIMENTS, key=lambda k: int(k[1:])))} or 'all'",
            file=sys.stderr,
        )
        return 2
    report = driver()
    print(report.render())
    if args.json:
        report.to_json(args.json)
        print(f"\nwrote {args.json}")
    return 0


def _experiment_ids(requested: List[str]) -> List[str]:
    """Normalise/validate experiment ids, expanding the 'all' keyword."""
    ordered = sorted(ALL_EXPERIMENTS, key=lambda k: int(k[1:]))
    if any(token.lower() == "all" for token in requested):
        return ordered
    ids = []
    for token in requested:
        experiment_id = token.upper()
        if experiment_id not in ALL_EXPERIMENTS:
            raise SystemExit(
                f"unknown experiment {token!r}; available: {', '.join(ordered)} or 'all'"
            )
        ids.append(experiment_id)
    return ids


def _driver_overrides(driver, args: argparse.Namespace) -> dict:
    """CLI overrides (runs/seed/n/max_rounds) the driver actually accepts."""
    accepted = inspect.signature(driver).parameters
    candidates = {
        "runs": args.runs,
        "seed": args.seed,
        "n": args.n,
        "max_rounds": args.max_rounds,
    }
    return {
        name: value
        for name, value in candidates.items()
        if value is not None and name in accepted
    }


def _spec_reducer(name: str, spec: CampaignSpec):
    """Build the in-worker reducer requested by ``--reduce``.

    ``predicate`` evaluates every (non-null) predicate of the spec's
    grid inside the worker; ``decision`` and ``fault-profile`` take no
    configuration.
    """
    if name != "predicate":
        return make_reducer(name)
    predicates = {}
    for predicate_spec in spec.predicates or ():
        if predicate_spec is None:
            continue
        # The registry predicates are n-independent, so n=0 is fine here.
        predicate = build_predicate(predicate_spec, n=0)
        predicates[predicate.name] = predicate
    if not predicates:
        raise ValueError(
            "--reduce predicate needs at least one non-null predicate in the spec"
        )
    return make_reducer("predicate", predicates)


def _print_worker_stats(runner) -> None:
    """Per-worker stats lines for distributed runners (fleet summary)."""
    for worker_id in sorted(getattr(runner, "worker_stats", {})):
        print(f"worker[{worker_id}]: {runner.worker_stats[worker_id].summary()}")


def _failure_summary(label: str, records) -> int:
    """Print the failure/timeout summary; returns the exit code (0/1).

    A campaign with any failed or timed-out run must exit non-zero so
    CI and fleet submitters cannot mistake a partial sweep for a green
    one.
    """
    failed = [record for record in records if not record.ok]
    if not failed:
        return 0
    timeouts = sum(1 for record in failed if record.timed_out)
    print(
        f"campaign[{label}]: {len(failed)} of {len(records)} runs failed "
        f"({timeouts} timed out)",
        file=sys.stderr,
    )
    for record in failed[:10]:
        print(
            f"  run_index={record.run_index} seed={record.seed}: {record.error}",
            file=sys.stderr,
        )
    if len(failed) > 10:
        print(f"  ... and {len(failed) - 10} more", file=sys.stderr)
    return 1


def _make_campaign_runner(args: argparse.Namespace, backend: str):
    """The runner the campaign command drives: local pool or fleet submitter."""
    if args.distributed:
        return DistributedCampaignRunner(
            queue_dir=args.queue_dir,
            batch_size=args.batch_size,
            backend=backend,
            wait_timeout=args.wait_timeout,
        )
    cache = None if args.no_cache else ResultCache(args.cache_dir)
    return CampaignRunner(jobs=args.jobs, timeout=args.timeout, cache=cache, backend=backend)


def _autoscale_supervisor(args: argparse.Namespace, backend: str):
    """The background Supervisor for ``--autoscale`` (``None`` without it)."""
    if not args.autoscale:
        return None
    return Supervisor(
        queue=args.queue_dir,
        min_workers=args.min_workers,
        max_workers=args.max_workers,
        jobs=args.jobs,
        backend=backend,
        poll_interval=0.5,
        worker_poll_interval=0.1,
        idle_grace=2.0,
    )


def _status_printer():
    """A Supervisor ``on_status`` callback printing scaling transitions."""
    last: dict = {}

    def emit(status) -> None:
        key = (status["workers"], status["target"])
        if key != last.get("key"):
            last["key"] = key
            print(
                f"supervise: workers={status['workers']} target={status['target']} "
                f"unclaimed={status['unclaimed_units']} "
                f"pending_batches={status['pending_batches']}",
                flush=True,
            )

    return emit


def _cmd_campaign(args: argparse.Namespace) -> int:
    if args.jobs < 1:
        print(f"--jobs must be >= 1, got {args.jobs}", file=sys.stderr)
        return 2
    if args.batch_size < 1:
        print(f"--batch-size must be >= 1, got {args.batch_size}", file=sys.stderr)
        return 2
    if args.submit_only and not (args.distributed and args.spec):
        print("--submit-only requires --distributed and --spec", file=sys.stderr)
        return 2
    if args.autoscale and not args.distributed:
        print("--autoscale requires --distributed", file=sys.stderr)
        return 2
    if args.distributed and (args.no_cache or args.cache_dir != ".repro_cache"):
        print(
            "--distributed ignores --no-cache/--cache-dir: the fleet "
            "coordinates through the shared cache inside the queue dir "
            f"({args.queue_dir}/cache)",
            file=sys.stderr,
        )
    backend = args.backend or "reference"
    if args.distributed and not get_backend(backend).equivalent_to_reference:
        print(
            f"--distributed requires a backend that is result-identical to the "
            f"reference engine; {backend!r} is not (its records would depend on "
            f"which worker ran them)",
            file=sys.stderr,
        )
        return 2

    try:
        supervisor = _autoscale_supervisor(args, backend)
    except ValueError as exc:  # bad --min-workers/--max-workers bounds
        print(str(exc), file=sys.stderr)
        return 2
    if supervisor is None:
        return _run_campaign_command(args, backend)
    # --autoscale: spawn/retire local workers while the campaign runs;
    # the fleet is always retired on the way out, success or not.
    supervisor.start()
    try:
        return _run_campaign_command(args, backend)
    finally:
        supervisor.stop()


def _run_campaign_command(args: argparse.Namespace, backend: str) -> int:
    """The campaign body: a ``--spec`` grid or a list of experiment ids."""
    if args.spec:
        try:
            spec = CampaignSpec.from_json(args.spec)
        except (OSError, ValueError, KeyError) as exc:
            print(f"cannot load campaign spec {args.spec!r}: {exc}", file=sys.stderr)
            return 2
        if args.backend:
            # The CLI flag overrides the spec's backend field.
            spec.backend = args.backend
        reducer = None
        if args.reduce:
            try:
                reducer = _spec_reducer(args.reduce, spec)
            except (KeyError, ValueError) as exc:
                print(f"cannot build reducer {args.reduce!r}: {exc}", file=sys.stderr)
                return 2
        if args.submit_only:
            runner = _make_campaign_runner(args, backend)
            campaign_id = runner.submit_campaign(spec, reducer)
            if campaign_id is None:
                print(f"campaign[{spec.campaign_id}]: every run already cached")
            else:
                print(
                    f"campaign[{spec.campaign_id}]: submitted as {campaign_id} "
                    f"to {args.queue_dir} (run 'repro-ho worker --queue-dir "
                    f"{args.queue_dir}' on the fleet)"
                )
            return 0
        try:
            with _make_campaign_runner(args, backend) as runner:
                if reducer is not None:
                    result = runner.run_reduced_campaign(spec, reducer)
                    report = reduced_campaign_report(spec, reducer, result.records)
                else:
                    result = runner.run_campaign(spec)
                    report = campaign_report(spec, result.records)
        except RunTimeoutError as exc:
            # --distributed --wait-timeout expired before the fleet
            # finished; the campaign stays queued for late workers.
            print(f"campaign {spec.campaign_id} timed out: {exc}", file=sys.stderr)
            return 1
        print(report.render())
        if args.json:
            report.to_json(args.json)
            print(f"wrote {args.json}")
        print(f"runner[{spec.campaign_id}]: jobs={args.jobs} {result.stats.summary()}")
        _print_worker_stats(runner)
        return _failure_summary(spec.campaign_id, result.records)

    if args.reduce:
        print("--reduce requires --spec (experiment drivers pick their own reducers)", file=sys.stderr)
        return 2

    if not args.ids:
        print("campaign needs experiment ids (or 'all'), or --spec FILE", file=sys.stderr)
        return 2

    # One experiment failing must not skip the remaining ones: finish
    # the whole list, then report failure through the exit code.
    exit_code = 0
    for experiment_id in _experiment_ids(args.ids):
        driver = ALL_EXPERIMENTS[experiment_id]
        # One runner per experiment so the printed stats are per-experiment;
        # the cache is shared across all of them.
        runner = _make_campaign_runner(args, backend)
        try:
            report = driver(runner=runner, **_driver_overrides(driver, args))
        except RuntimeError as exc:
            # Timed-out/failed runs cannot be folded into rate tables on
            # the experiment-driver path.
            print(f"experiment {experiment_id} failed: {exc}", file=sys.stderr)
            if args.timeout is not None:
                print("hint: raise or drop --timeout", file=sys.stderr)
            exit_code = 1
            continue
        finally:
            runner.close()
        print(report.render())
        if args.json:
            from pathlib import Path

            json_path = Path(args.json) / f"{experiment_id}.json"
            report.to_json(json_path)
            print(f"wrote {json_path}")
        print(f"runner[{experiment_id}]: jobs={args.jobs} {runner.stats.summary()}")
        _print_worker_stats(runner)
        if runner.stats.failures or runner.stats.timeouts:
            print(
                f"campaign[{experiment_id}]: {runner.stats.failures} failures, "
                f"{runner.stats.timeouts} timeouts",
                file=sys.stderr,
            )
            exit_code = 1
        print()
    return exit_code


def _cmd_worker(args: argparse.Namespace) -> int:
    if args.jobs < 1:
        print(f"--jobs must be >= 1, got {args.jobs}", file=sys.stderr)
        return 2
    try:
        executed = _run_worker_loop(args)
    except ValueError as exc:  # e.g. a non-result-identical backend
        print(str(exc), file=sys.stderr)
        return 2
    print(f"worker: executed {executed} batch(es) from {args.queue_dir}")
    return 0


def _run_worker_loop(args: argparse.Namespace) -> int:
    return run_worker(
        queue_dir=args.queue_dir,
        worker_id=args.worker_id,
        jobs=args.jobs,
        backend=args.backend or "reference",
        timeout=args.timeout,
        ttl=args.ttl,
        poll_interval=args.poll_interval,
        max_idle=args.max_idle,
        steal=not args.no_steal,
    )


def _cmd_supervise(args: argparse.Namespace) -> int:
    if args.jobs < 1:
        print(f"--jobs must be >= 1, got {args.jobs}", file=sys.stderr)
        return 2
    try:
        supervisor = Supervisor(
            queue=args.queue_dir,
            min_workers=args.min_workers,
            max_workers=args.max_workers,
            jobs=args.jobs,
            backend=args.backend or "reference",
            ttl=args.ttl,
            timeout=args.timeout,
            poll_interval=args.poll_interval,
            idle_grace=args.idle_grace,
            steal=not args.no_steal,
            on_status=_status_printer(),
            scale_on_trend=args.scale_on_trend,
            trend_horizon=args.trend_horizon,
        )
    except ValueError as exc:  # bad bounds or a non-result-identical backend
        print(str(exc), file=sys.stderr)
        return 2
    stats = supervisor.run(
        exit_when_drained=args.exit_on_drain, max_runtime=args.max_runtime
    )
    print(f"supervisor: {stats.summary()}")
    return 0


def _counter(totals: Dict[str, float], name: str) -> int:
    return int(totals.get(name, 0))


def render_fleet_status(status: Dict[str, object]) -> str:
    """Pure text rendering of a :func:`repro.runner.fleet_status` dict.

    Deterministic given its input (no clocks, no terminal queries), so
    the output is golden-tested; ``repro-ho status`` prints it.
    """
    queue: Dict[str, object] = dict(status.get("queue", {}))  # type: ignore[arg-type]
    workers: List[Dict[str, object]] = list(status.get("workers", []))  # type: ignore[arg-type]
    totals: Dict[str, float] = dict(status.get("totals", {}))  # type: ignore[arg-type]
    lines = [
        "queue: pending_batches={0} claimable_units={1} unclaimed_units={2} "
        "deposited_parts={3}".format(
            queue.get("pending_batches", 0),
            queue.get("claimable_units", 0),
            queue.get("unclaimed_units", 0),
            queue.get("deposited_parts", 0),
        )
    ]
    live = dict(queue.get("live_leases", {}) or {})  # type: ignore[arg-type]
    if live:
        held = " ".join(f"{worker}={count}" for worker, count in sorted(live.items()))
        lines.append(f"leases: {held}")
    else:
        lines.append("leases: none")
    lines.append(
        "totals: units={0} claims={1} deposits={2} steals={3} requeues={4} "
        "lease_breaks={5} cache_corrupt={6}".format(
            _counter(totals, "repro_worker_units_total"),
            _counter(totals, "repro_queue_claims_total"),
            _counter(totals, "repro_queue_deposits_total"),
            _counter(totals, "repro_worker_steals_total"),
            _counter(totals, "repro_queue_requeues_total"),
            _counter(totals, "repro_queue_lease_breaks_total"),
            _counter(totals, "repro_cache_corrupt_total"),
        )
    )
    if not workers:
        lines.append("workers: no metric snapshots yet")
        return "\n".join(lines)
    lines.append(f"workers: {len(workers)} snapshot(s)")
    name_width = max(6, max(len(str(entry.get("worker", ""))) for entry in workers))
    lines.append(
        f"  {'worker':<{name_width}}  {'age':>8}  {'units':>6}  {'runs':>6}  {'hit%':>6}"
    )
    for entry in workers:
        counters: Dict[str, float] = dict(entry.get("counters", {}))  # type: ignore[arg-type]
        age = entry.get("age_seconds")
        age_text = "?" if age is None else f"{float(age):.1f}s"  # type: ignore[arg-type]
        ratio = entry.get("cache_hit_ratio")
        ratio_text = "-" if ratio is None else f"{100.0 * float(ratio):.1f}"  # type: ignore[arg-type]
        runs = _counter(counters, 'repro_runner_runs_total{counter="total"}')
        units = int(float(entry.get("units", 0)))  # type: ignore[arg-type]
        lines.append(
            f"  {str(entry.get('worker', '')):<{name_width}}  {age_text:>8}  "
            f"{units:>6}  {runs:>6}  {ratio_text:>6}"
        )
    return "\n".join(lines)


def _cmd_status(args: argparse.Namespace) -> int:
    if args.interval <= 0:
        print(f"--interval must be > 0, got {args.interval}", file=sys.stderr)
        return 2
    queue = WorkQueue(args.queue_dir)
    try:
        while True:
            status = fleet_status(queue)
            if args.json:
                print(json.dumps(status, allow_nan=False, sort_keys=True), flush=True)
            else:
                print(render_fleet_status(status), flush=True)
            if not args.watch:
                return 0
            time.sleep(args.interval)
    except KeyboardInterrupt:  # pragma: no cover - interactive watch mode
        return 0


def _cmd_table(args: argparse.Namespace) -> int:
    if args.which in ("table1", "all"):
        print("Table 1 — summary of results")
        print(render_table([row.as_dict() for row in table1_rows()]))
        print()
    if args.which in ("related-work", "all"):
        print(f"Related-work comparison at n={args.n}")
        print(render_table(related_work_rows(args.n)))
        print()
    if args.which in ("resilience", "all"):
        rows = [
            {
                "n": row.n,
                "A max alpha": row.ate_max_alpha,
                "U max alpha": row.ute_max_alpha,
                "SW faults/round": row.santoro_widmayer_per_round,
                "Byzantine f": row.byzantine_static_max_f,
                "fast Byzantine f": row.fast_byzantine_max_f,
            }
            for row in resilience_table(iter(args.ns))
        ]
        print("Resilience across system sizes")
        print(render_table(rows))
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    # Imported lazily: the linter is devtooling and none of its modules
    # should load for ordinary run/campaign invocations.
    from repro.devtools.lint.cli import run_lint

    return run_lint(args)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-ho",
        description="Reproduction of 'Tolerating Corrupted Communication' (PODC 2007).",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    run_parser = subparsers.add_parser("run", help="run one consensus instance")
    run_parser.add_argument("--algorithm", choices=available_algorithms(), default="ate")
    run_parser.add_argument("--n", type=int, default=9)
    run_parser.add_argument(
        "--alpha",
        type=int,
        default=1,
        help=(
            "corruption bound: configures the ate/ute thresholds (ignored by "
            "algorithms without an alpha, e.g. one-third-rule) and the "
            "corruption adversary's per-receiver budget"
        ),
    )
    run_parser.add_argument(
        "--f",
        type=int,
        default=1,
        help=(
            "Byzantine f: configures phase-king (ignored by other algorithms) "
            "and the byzantine adversary"
        ),
    )
    run_parser.add_argument(
        "--adversary",
        choices=["reliable", "omission", "corruption", "blocks", "byzantine"],
        default="corruption",
    )
    run_parser.add_argument("--workload", choices=["unanimous", "split", "random", "distinct"], default="random")
    run_parser.add_argument("--drop-probability", type=float, default=0.1)
    run_parser.add_argument("--good-round-period", type=int, default=4)
    run_parser.add_argument("--max-rounds", type=int, default=60)
    run_parser.add_argument("--seed", type=int, default=0)
    run_parser.add_argument(
        "--backend",
        choices=available_backends(),
        default="reference",
        help="engine backend (fast falls back to reference when unsupported)",
    )
    run_parser.add_argument("--verbose", action="store_true")
    run_parser.set_defaults(func=_cmd_run)

    exp_parser = subparsers.add_parser("experiment", help="run a paper-reproduction experiment")
    exp_parser.add_argument("id", help="experiment id E1..E12, or 'all'")
    exp_parser.add_argument("--json", help="also write the report to this JSON file")
    exp_parser.set_defaults(func=_cmd_experiment)

    campaign_parser = subparsers.add_parser(
        "campaign",
        help="run experiments through the parallel campaign runner",
        description=(
            "Run paper experiments (E1..E12, or 'all'), or a declarative --spec grid, "
            "through the campaign runner: worker processes, per-run timeouts and an "
            "incremental on-disk result cache keyed by stable config hashes."
        ),
    )
    campaign_parser.add_argument(
        "ids", nargs="*", help="experiment ids E1..E12, or 'all' (omit when using --spec)"
    )
    campaign_parser.add_argument("--spec", help="JSON CampaignSpec file to run instead of ids")
    campaign_parser.add_argument(
        "--reduce",
        choices=["decision", "predicate", "fault-profile"],
        help=(
            "with --spec: apply this reducer inside the workers and ship back "
            "only compact reduced records (cacheable under reducer-fingerprinted "
            "keys). 'predicate' evaluates every spec predicate on every run, so "
            "keep the spec's predicate grid to a single entry to avoid redundant "
            "cells"
        ),
    )
    campaign_parser.add_argument(
        "--backend",
        choices=available_backends(),
        default=None,
        help=(
            "engine backend for every run (default: the spec's backend, or "
            "reference); reference and fast produce identical results and share "
            "the cache, async runs the asyncio engine (never cached: its fault "
            "schedules can differ)"
        ),
    )
    campaign_parser.add_argument("--jobs", type=int, default=1, help="worker processes (default 1)")
    campaign_parser.add_argument(
        "--timeout", type=float, default=None, help="per-run timeout in seconds"
    )
    campaign_parser.add_argument(
        "--cache-dir", default=".repro_cache", help="result cache directory (default .repro_cache)"
    )
    campaign_parser.add_argument(
        "--no-cache", action="store_true", help="disable the on-disk result cache"
    )
    campaign_parser.add_argument(
        "--json",
        help="with --spec: report JSON path; with ids: directory for per-experiment JSON",
    )
    campaign_parser.add_argument("--runs", type=int, help="override runs per cell")
    campaign_parser.add_argument("--seed", type=int, help="override the base seed")
    campaign_parser.add_argument("--n", type=int, help="override the system size n")
    campaign_parser.add_argument("--max-rounds", type=int, help="override the round horizon")
    campaign_parser.add_argument(
        "--distributed",
        action="store_true",
        help=(
            "submit the campaign to a shared-store work queue and wait for a "
            "worker fleet ('repro-ho worker') to execute it; results are "
            "byte-identical to serial runs and land in the fleet-shared cache"
        ),
    )
    campaign_parser.add_argument(
        "--queue-dir",
        default=".repro_queue",
        help="shared queue directory for --distributed (default .repro_queue)",
    )
    campaign_parser.add_argument(
        "--batch-size",
        type=int,
        default=8,
        help="runs per claimable batch for --distributed (default 8)",
    )
    campaign_parser.add_argument(
        "--submit-only",
        action="store_true",
        help="with --distributed --spec: enqueue the campaign and exit without waiting",
    )
    campaign_parser.add_argument(
        "--wait-timeout",
        type=float,
        default=None,
        help="with --distributed: give up waiting for the fleet after this many seconds",
    )
    campaign_parser.add_argument(
        "--autoscale",
        action="store_true",
        help=(
            "with --distributed: run an auto-scaling supervisor alongside the "
            "campaign, spawning local workers ('repro-ho worker') from queue "
            "depth between --min-workers and --max-workers and retiring them "
            "when the queue drains"
        ),
    )
    campaign_parser.add_argument(
        "--min-workers",
        type=int,
        default=0,
        help="with --autoscale: fleet floor (default 0)",
    )
    campaign_parser.add_argument(
        "--max-workers",
        type=int,
        default=4,
        help="with --autoscale: fleet ceiling (default 4)",
    )
    campaign_parser.set_defaults(func=_cmd_campaign)

    worker_parser = subparsers.add_parser(
        "worker",
        help="join a distributed campaign worker fleet",
        description=(
            "Claim batches from a shared queue directory (lease files with TTL + "
            "heartbeat; a crashed worker's leases expire and its batches are "
            "re-claimed) and execute them through the campaign runner. Results "
            "land in the fleet-shared cache, byte-identical to serial runs."
        ),
    )
    worker_parser.add_argument(
        "--queue-dir",
        default=".repro_queue",
        help="shared queue directory to poll (default .repro_queue)",
    )
    worker_parser.add_argument(
        "--jobs", type=int, default=1, help="worker processes for batch execution (default 1)"
    )
    worker_parser.add_argument(
        "--backend",
        choices=available_backends(),
        default=None,
        help="engine backend for claimed runs (default reference)",
    )
    worker_parser.add_argument(
        "--timeout", type=float, default=None, help="per-run timeout in seconds"
    )
    worker_parser.add_argument(
        "--ttl",
        type=float,
        default=60.0,
        help="lease time-to-live in seconds; peers may re-claim a batch whose "
        "lease heartbeat is older than this (default 60)",
    )
    worker_parser.add_argument(
        "--poll-interval",
        type=float,
        default=0.5,
        help="seconds between queue scans when idle (default 0.5)",
    )
    worker_parser.add_argument(
        "--max-idle",
        type=float,
        default=None,
        help="exit after this many consecutive idle seconds (default: run forever; "
        "set it above --ttl so crashed peers' batches can still be reclaimed). "
        "Independently of --max-idle, the worker exits as soon as a supervisor "
        "writes a retire marker for its id (see docs/distributed-queue.md)",
    )
    worker_parser.add_argument(
        "--worker-id", default=None, help="fleet-unique id (default host-pid)"
    )
    worker_parser.add_argument(
        "--no-steal",
        action="store_true",
        help="never split peers' in-progress batches (work stealing is on by default)",
    )
    worker_parser.set_defaults(func=_cmd_worker)

    supervise_parser = subparsers.add_parser(
        "supervise",
        help="auto-scale a local worker fleet against a queue directory",
        description=(
            "Poll a shared queue directory's depth (unclaimed batch intervals, "
            "live leases, deposit volume) and spawn or retire local "
            "'repro-ho worker' processes between --min-workers and "
            "--max-workers. Workers are retired through marker files — they "
            "finish and deposit their current interval before exiting."
        ),
    )
    supervise_parser.add_argument(
        "--queue-dir",
        default=".repro_queue",
        help="shared queue directory to supervise (default .repro_queue)",
    )
    supervise_parser.add_argument(
        "--min-workers", type=int, default=0, help="fleet floor (default 0)"
    )
    supervise_parser.add_argument(
        "--max-workers", type=int, default=4, help="fleet ceiling (default 4)"
    )
    supervise_parser.add_argument(
        "--jobs", type=int, default=1, help="worker processes per spawned worker (default 1)"
    )
    supervise_parser.add_argument(
        "--backend",
        choices=available_backends(),
        default=None,
        help="engine backend for spawned workers (default reference)",
    )
    supervise_parser.add_argument(
        "--timeout", type=float, default=None, help="per-run timeout for spawned workers"
    )
    supervise_parser.add_argument(
        "--ttl",
        type=float,
        default=60.0,
        help="lease time-to-live for spawned workers in seconds (default 60)",
    )
    supervise_parser.add_argument(
        "--poll-interval",
        type=float,
        default=1.0,
        help="seconds between supervisor depth polls (default 1)",
    )
    supervise_parser.add_argument(
        "--idle-grace",
        type=float,
        default=3.0,
        help="scale down only after the queue has been drained this long (default 3)",
    )
    supervise_parser.add_argument(
        "--exit-on-drain",
        action="store_true",
        help="exit once the queue is drained and every spawned worker retired",
    )
    supervise_parser.add_argument(
        "--max-runtime",
        type=float,
        default=None,
        help="hard stop after this many seconds (default: run until interrupted)",
    )
    supervise_parser.add_argument(
        "--no-steal",
        action="store_true",
        help="spawn workers with work stealing disabled",
    )
    supervise_parser.add_argument(
        "--scale-on-trend",
        action="store_true",
        help=(
            "scale on the EWMA deposit-rate trend (clear the backlog within "
            "--trend-horizon at observed per-worker throughput) instead of "
            "instantaneous queue depth"
        ),
    )
    supervise_parser.add_argument(
        "--trend-horizon",
        type=float,
        default=30.0,
        help="target seconds to clear the backlog under --scale-on-trend (default 30)",
    )
    supervise_parser.set_defaults(func=_cmd_supervise)

    status_parser = subparsers.add_parser(
        "status",
        help="render a live observability view of a worker fleet",
        description=(
            "Merge one queue-depth scan with every worker's deposited metric "
            "snapshot (the metrics/ namespace of the queue directory) into a "
            "fleet view: pending/claimable/unclaimed units, live leases, and "
            "per-worker counters with snapshot age and cache hit ratio. "
            "Metric snapshots are deposited by workers unless REPRO_METRICS=off."
        ),
    )
    status_parser.add_argument(
        "--queue-dir",
        default=".repro_queue",
        help="shared queue directory to inspect (default .repro_queue)",
    )
    status_parser.add_argument(
        "--json",
        action="store_true",
        help="emit the merged status as one JSON document per refresh",
    )
    status_parser.add_argument(
        "--watch",
        action="store_true",
        help="refresh every --interval seconds until interrupted",
    )
    status_parser.add_argument(
        "--interval",
        type=float,
        default=2.0,
        help="refresh period for --watch in seconds (default 2)",
    )
    status_parser.set_defaults(func=_cmd_status)

    table_parser = subparsers.add_parser("table", help="print the analytic tables")
    table_parser.add_argument(
        "which", choices=["table1", "related-work", "resilience", "all"], default="all", nargs="?"
    )
    table_parser.add_argument("--n", type=int, default=12)
    table_parser.add_argument("--ns", type=int, nargs="*", default=[4, 8, 12, 16, 20, 40])
    table_parser.set_defaults(func=_cmd_table)

    from repro.devtools.lint.cli import LINT_EPILOG, add_lint_arguments

    lint_parser = subparsers.add_parser(
        "lint",
        help="run the repro-lint static-analysis rules",
        description=(
            "AST-based invariant linter: machine-checks the determinism (D), "
            "store-seam (A), serialisation/schema (S) and registry (R) rules "
            "the distributed runner's correctness rests on."
        ),
        epilog=LINT_EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    add_lint_arguments(lint_parser)
    lint_parser.set_defaults(func=_cmd_lint)

    return parser


def cli_reference_markdown() -> str:
    """The generated CLI reference page (``docs/reference/cli.md``).

    Renders ``--help`` for the top-level parser and every subcommand
    into one markdown document.  Formatting is pinned to an 80-column
    terminal so the output is deterministic; a test asserts the
    committed page matches this function, so the reference can never
    drift from the argparse definitions.  Regenerate with
    ``PYTHONPATH=src python docs/build.py --write-cli-reference``.
    """
    import os

    columns_before = os.environ.get("COLUMNS")
    os.environ["COLUMNS"] = "80"
    try:
        parser = build_parser()
        subparsers = next(
            action
            for action in parser._actions
            if isinstance(action, argparse._SubParsersAction)
        )
        lines = [
            "# CLI reference",
            "",
            "<!-- AUTOGENERATED by repro.cli.cli_reference_markdown(); do not edit.",
            "     Regenerate: PYTHONPATH=src python docs/build.py --write-cli-reference -->",
            "",
            "`repro-ho` (or `python -m repro.cli`) is the command-line surface of",
            "this reproduction.  This page is generated from the argparse",
            "definitions and kept in sync by `tests/docs/test_docs_site.py`.",
            "",
            "## `repro-ho`",
            "",
            "```text",
            parser.format_help().rstrip(),
            "```",
            "",
        ]
        for name, subparser in subparsers.choices.items():
            lines += [
                f"## `repro-ho {name}`",
                "",
                "```text",
                subparser.format_help().rstrip(),
                "```",
                "",
            ]
        return "\n".join(lines)
    finally:
        if columns_before is None:
            os.environ.pop("COLUMNS", None)
        else:
            os.environ["COLUMNS"] = columns_before


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

"""Unit tests for heard-of sets, kernels and altered spans (Section 2.1)."""

import pytest

from repro.core.heardof import (
    HeardOfCollection,
    ReceptionVector,
    altered_heard_of,
    altered_span,
    kernel,
    safe_kernel,
)
from tests.conftest import make_round, perfect_round


class TestAlteredHeardOf:
    def test_empty_sets(self):
        assert altered_heard_of([], []) == frozenset()

    def test_no_corruption(self):
        assert altered_heard_of([0, 1, 2], [0, 1, 2]) == frozenset()

    def test_some_corruption(self):
        assert altered_heard_of([0, 1, 2], [0, 2]) == frozenset({1})

    def test_all_corrupted(self):
        assert altered_heard_of([0, 1], []) == frozenset({0, 1})

    def test_sho_not_subset_raises(self):
        with pytest.raises(ValueError):
            altered_heard_of([0, 1], [2])


class TestKernels:
    def test_kernel_of_identical_sets(self):
        ho = {0: {0, 1, 2}, 1: {0, 1, 2}, 2: {0, 1, 2}}
        assert kernel(ho) == frozenset({0, 1, 2})

    def test_kernel_is_intersection(self):
        ho = {0: {0, 1, 2}, 1: {1, 2}, 2: {2}}
        assert kernel(ho) == frozenset({2})

    def test_kernel_empty_when_disjoint(self):
        ho = {0: {0}, 1: {1}}
        assert kernel(ho) == frozenset()

    def test_kernel_of_empty_mapping(self):
        assert kernel({}) == frozenset()

    def test_safe_kernel_same_semantics(self):
        sho = {0: {0, 1}, 1: {1, 2}}
        assert safe_kernel(sho) == frozenset({1})


class TestAlteredSpan:
    def test_no_corruption_anywhere(self):
        ho = {0: {0, 1}, 1: {0, 1}}
        sho = {0: {0, 1}, 1: {0, 1}}
        assert altered_span(ho, sho) == frozenset()

    def test_union_of_corrupted_senders(self):
        ho = {0: {0, 1, 2}, 1: {0, 1, 2}}
        sho = {0: {0, 2}, 1: {0, 1}}
        assert altered_span(ho, sho) == frozenset({1, 2})


class TestReceptionVector:
    def test_heard_of_is_support(self):
        rv = ReceptionVector(receiver=0, received={1: "a", 2: "b"}, intended={1: "a", 2: "b", 3: "c"})
        assert rv.heard_of == frozenset({1, 2})

    def test_safe_heard_of_requires_matching_payload(self):
        rv = ReceptionVector(receiver=0, received={1: "a", 2: "X"}, intended={1: "a", 2: "b"})
        assert rv.safe_heard_of == frozenset({1})
        assert rv.altered_heard_of == frozenset({2})

    def test_count_of_and_senders_of(self):
        rv = ReceptionVector(
            receiver=0,
            received={1: 5, 2: 5, 3: 7},
            intended={1: 5, 2: 5, 3: 7},
        )
        assert rv.count_of(5) == 2
        assert rv.count_of(7) == 1
        assert rv.count_of(42) == 0
        assert rv.senders_of(5) == frozenset({1, 2})

    def test_sender_missing_from_intended_is_not_safe(self):
        # A reception from a sender with no intended entry cannot be "safe".
        rv = ReceptionVector(receiver=0, received={9: 1}, intended={})
        assert rv.safe_heard_of == frozenset()
        assert rv.altered_heard_of == frozenset({9})


class TestRoundRecord:
    def test_perfect_round_has_full_kernels(self):
        record = perfect_round(1, 4)
        assert record.kernel() == frozenset(range(4))
        assert record.safe_kernel() == frozenset(range(4))
        assert record.altered_span() == frozenset()
        assert record.total_corruptions() == 0
        assert record.total_omissions() == 0
        assert record.max_aho() == 0

    def test_corrupted_round_statistics(self):
        n = 3
        received_by = {
            0: {0: 0, 1: 99, 2: 0},   # one corruption (from 1)
            1: {0: 0, 1: 0},           # one omission (from 2)
            2: {0: 0, 1: 0, 2: 0},
        }
        record = make_round(1, n, received_by, intended_value=0)
        assert record.aho(0) == frozenset({1})
        assert record.total_corruptions() == 1
        assert record.total_omissions() == 1
        assert record.max_aho() == 1
        assert record.altered_span() == frozenset({1})
        assert record.kernel() == frozenset({0, 1})
        assert record.safe_kernel() == frozenset({0})


class TestHeardOfCollection:
    def test_rounds_must_be_consecutive(self):
        with pytest.raises(ValueError):
            HeardOfCollection(3, [perfect_round(2, 3)])

    def test_append_enforces_order(self):
        collection = HeardOfCollection(3, [perfect_round(1, 3)])
        with pytest.raises(ValueError):
            collection.append(perfect_round(3, 3))
        collection.append(perfect_round(2, 3))
        assert collection.num_rounds == 2

    def test_getitem_is_one_based(self, perfect_collection):
        assert perfect_collection[1].round_num == 1
        assert perfect_collection[3].round_num == 3
        with pytest.raises(KeyError):
            _ = perfect_collection[4]
        with pytest.raises(KeyError):
            _ = perfect_collection[0]

    def test_global_kernels_on_perfect_collection(self, perfect_collection):
        everyone = frozenset(range(4))
        assert perfect_collection.global_kernel() == everyone
        assert perfect_collection.global_safe_kernel() == everyone
        assert perfect_collection.global_altered_span() == frozenset()
        assert perfect_collection.is_benign()

    def test_global_sets_shrink_with_faults(self):
        n = 3
        clean = perfect_round(1, n)
        received_by = {
            0: {0: 0, 1: 99, 2: 0},
            1: {0: 0, 1: 0, 2: 5},
            2: {0: 0, 2: 0},
        }
        faulty = make_round(2, n, received_by, intended_value=0)
        collection = HeardOfCollection(n, [clean, faulty])
        assert collection.global_kernel() == frozenset({0, 2})
        assert collection.global_safe_kernel() == frozenset({0})
        assert collection.global_altered_span() == frozenset({1, 2})
        assert not collection.is_benign()
        assert collection.max_aho() == 1
        assert collection.total_corruptions() == 2
        assert collection.total_omissions() == 1
        assert collection.corruption_profile() == [0, 2]

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            HeardOfCollection(0)

    def test_ho_sho_aho_accessors(self):
        n = 3
        received_by = {0: {0: 0, 1: 7}, 1: {0: 0, 1: 0, 2: 0}, 2: {}}
        record = make_round(1, n, received_by, intended_value=0)
        collection = HeardOfCollection(n, [record])
        assert collection.ho(0, 1) == frozenset({0, 1})
        assert collection.sho(0, 1) == frozenset({0})
        assert collection.aho(0, 1) == frozenset({1})
        assert collection.ho(2, 1) == frozenset()

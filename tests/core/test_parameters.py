"""Unit tests for the threshold parameter containers (Theorems 1 and 2 conditions)."""

from fractions import Fraction

import pytest

from repro.core.parameters import AteParameters, UteParameters


class TestAteParameters:
    def test_symmetric_choice_formula(self):
        params = AteParameters.symmetric(n=9, alpha=0)
        assert params.threshold == Fraction(6)
        assert params.enough == Fraction(6)
        params = AteParameters.symmetric(n=9, alpha=2)
        assert params.threshold == Fraction(2, 3) * 13
        assert params.enough == params.threshold

    def test_symmetric_choice_is_one_third_rule_at_alpha_zero(self):
        params = AteParameters.symmetric(n=12, alpha=0)
        assert params.threshold == Fraction(2, 3) * 12 == 8

    def test_symmetric_choice_satisfies_theorem_1_within_bound(self):
        for n in range(4, 30):
            for alpha in range(0, (n - 1) // 4 + 1):
                if alpha < n / 4:
                    params = AteParameters.symmetric(n=n, alpha=alpha)
                    assert params.satisfies_theorem_1, (n, alpha)
                    assert params.satisfies_agreement_condition
                    assert params.satisfies_integrity_condition
                    assert params.satisfies_termination_condition

    def test_theorem_1_fails_beyond_quarter(self):
        n = 8
        alpha = 2  # alpha == n/4: infeasible
        # With the symmetric formula E = 2(n + 2a)/3 = 8 = n, n > E fails.
        params = AteParameters.symmetric(n=n, alpha=alpha)
        assert not params.satisfies_theorem_1

    def test_minimal_enough_constructor(self):
        params = AteParameters.minimal_enough(n=10, alpha=1, enough=8)
        assert params.threshold == 2 * (10 + 2 - 8)
        assert params.enough == 8

    def test_agreement_condition_boundaries(self):
        # E >= n/2 + alpha and T >= 2(n + 2a - E)
        ok = AteParameters(n=10, alpha=1, threshold=12, enough=6)
        assert ok.satisfies_agreement_condition
        bad_e = AteParameters(n=10, alpha=1, threshold=14, enough=5.5)
        assert not bad_e.satisfies_agreement_condition
        bad_t = AteParameters(n=10, alpha=1, threshold=11.9, enough=6)
        assert not bad_t.satisfies_agreement_condition

    def test_integrity_condition(self):
        assert AteParameters(n=10, alpha=2, threshold=4, enough=2).satisfies_integrity_condition
        assert not AteParameters(n=10, alpha=2, threshold=3, enough=2).satisfies_integrity_condition
        assert not AteParameters(n=10, alpha=2, threshold=4, enough=1).satisfies_integrity_condition

    def test_is_safe(self):
        params = AteParameters.symmetric(n=9, alpha=1)
        assert params.is_safe

    def test_validation(self):
        with pytest.raises(ValueError):
            AteParameters(n=0, alpha=0, threshold=1, enough=1)
        with pytest.raises(ValueError):
            AteParameters(n=5, alpha=-1, threshold=1, enough=1)
        with pytest.raises(ValueError):
            AteParameters(n=5, alpha=6, threshold=1, enough=1)
        with pytest.raises(ValueError):
            AteParameters(n=5, alpha=0, threshold=-1, enough=1)

    def test_str_is_informative(self):
        text = str(AteParameters.symmetric(n=9, alpha=1))
        assert "n=9" in text and "alpha=1" in text


class TestUteParameters:
    def test_minimal_choice_formula(self):
        params = UteParameters.minimal(n=9, alpha=2)
        assert params.threshold == Fraction(9, 2) + 2
        assert params.enough == params.threshold

    def test_minimal_choice_satisfies_theorem_2_within_bound(self):
        for n in range(3, 30):
            for alpha in range(0, n // 2 + 1):
                if alpha < n / 2:
                    params = UteParameters.minimal(n=n, alpha=alpha)
                    assert params.satisfies_theorem_2, (n, alpha)

    def test_theorem_2_fails_at_half(self):
        n = 8
        params = UteParameters.minimal(n=n, alpha=4)  # E = T = 8 = n
        assert not params.satisfies_theorem_2

    def test_agreement_and_integrity_conditions(self):
        ok = UteParameters(n=10, alpha=2, threshold=7, enough=7)
        assert ok.satisfies_agreement_condition
        assert ok.satisfies_integrity_condition
        assert not UteParameters(n=10, alpha=2, threshold=6.9, enough=7).satisfies_agreement_condition
        assert not UteParameters(n=10, alpha=2, threshold=7, enough=6.9).satisfies_integrity_condition

    def test_u_safe_minimum(self):
        params = UteParameters(n=9, alpha=2, threshold=6.5, enough=6.5)
        assert params.u_safe_minimum == max(Fraction(9) + 4 - Fraction(13, 2) - 1, Fraction(13, 2), 2)

    def test_validation(self):
        with pytest.raises(ValueError):
            UteParameters(n=0, alpha=0, threshold=1, enough=1)
        with pytest.raises(ValueError):
            UteParameters(n=5, alpha=-1, threshold=1, enough=1)
        with pytest.raises(ValueError):
            UteParameters(n=5, alpha=0, threshold=1, enough=-2)

"""Unit tests for the HOProcess abstraction."""

import pytest

from repro.core.process import DecisionChangedError, HOProcess


class EchoProcess(HOProcess):
    """Minimal concrete process used to exercise the base class."""

    def send(self, round_num):
        return self.initial_value

    def transition(self, round_num, reception):
        if len(reception) == self.n:
            self._decide(self.initial_value, round_num)


class TestHOProcess:
    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            EchoProcess(pid=0, n=0, initial_value=1)
        with pytest.raises(ValueError):
            EchoProcess(pid=5, n=3, initial_value=1)
        with pytest.raises(ValueError):
            EchoProcess(pid=-1, n=3, initial_value=1)

    def test_initially_undecided(self):
        proc = EchoProcess(pid=0, n=3, initial_value=7)
        assert not proc.decided
        assert proc.decision is None
        assert proc.decision_round is None

    def test_send_to_defaults_to_broadcast(self):
        proc = EchoProcess(pid=1, n=3, initial_value="x")
        assert proc.send_to(1, 0) == proc.send(1) == "x"

    def test_decide_records_round_and_value(self):
        proc = EchoProcess(pid=0, n=2, initial_value=3)
        proc.transition(4, {0: 3, 1: 3})
        assert proc.decided and proc.decision == 3 and proc.decision_round == 4

    def test_decision_is_irrevocable(self):
        proc = EchoProcess(pid=0, n=2, initial_value=3)
        proc._decide(3, 1)
        proc._decide(3, 5)  # same value is a no-op
        assert proc.decision_round == 1
        with pytest.raises(DecisionChangedError):
            proc._decide(4, 6)

    def test_state_snapshot_default(self):
        proc = EchoProcess(pid=0, n=2, initial_value=3)
        snapshot = proc.state_snapshot()
        assert snapshot == {"decision": None, "decision_round": None}
        proc._decide(3, 2)
        assert proc.state_snapshot() == {"decision": 3, "decision_round": 2}

    def test_clone_is_independent(self):
        proc = EchoProcess(pid=0, n=2, initial_value=3)
        copy = proc.clone()
        copy._decide(3, 1)
        assert not proc.decided
        assert copy.decided

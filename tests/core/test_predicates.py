"""Unit tests for the communication predicates (Section 2.2, Figures 1-2, Section 5.2)."""

import pytest

from repro.core.heardof import HeardOfCollection
from repro.core.predicates import (
    AlphaSafePredicate,
    ALivePredicate,
    AndPredicate,
    BenignPredicate,
    ByzantineAsynchronousPredicate,
    ByzantineSynchronousPredicate,
    OrPredicate,
    PermanentAlphaPredicate,
    TruePredicate,
    ULivePredicate,
    USafePredicate,
)
from tests.conftest import make_round, perfect_round


def _collection_with_corruption(n=4, corrupt_receiver=0, corrupt_senders=(1,), rounds=2):
    """A collection where one receiver gets corrupted messages from given senders each round."""
    records = []
    for r in range(1, rounds + 1):
        received_by = {
            receiver: {sender: 0 for sender in range(n)} for receiver in range(n)
        }
        for sender in corrupt_senders:
            received_by[corrupt_receiver][sender] = 99
        records.append(make_round(r, n, received_by, intended_value=0))
    return HeardOfCollection(n, records)


class TestAlphaSafePredicate:
    def test_holds_on_benign_collection(self, perfect_collection):
        assert AlphaSafePredicate(0).holds(perfect_collection)

    def test_negative_alpha_rejected(self):
        with pytest.raises(ValueError):
            AlphaSafePredicate(-1)

    def test_bound_is_per_receiver_per_round(self):
        collection = _collection_with_corruption(corrupt_senders=(1, 2))
        assert not AlphaSafePredicate(1).holds(collection)
        assert AlphaSafePredicate(2).holds(collection)
        assert AlphaSafePredicate(3).holds(collection)

    def test_violations_are_descriptive(self):
        collection = _collection_with_corruption(corrupt_senders=(1, 2), rounds=1)
        violations = AlphaSafePredicate(1).violations(collection)
        assert len(violations) == 1
        assert "AHO" in violations[0]

    def test_check_round(self):
        collection = _collection_with_corruption(corrupt_senders=(1,), rounds=1)
        assert AlphaSafePredicate(1).check_round(collection[1]) is True
        assert AlphaSafePredicate(0).check_round(collection[1]) is False


class TestPermanentAlphaPredicate:
    def test_counts_distinct_corrupting_senders(self):
        collection = _collection_with_corruption(corrupt_senders=(1, 2))
        assert PermanentAlphaPredicate(2).holds(collection)
        assert not PermanentAlphaPredicate(1).holds(collection)

    def test_perm_alpha_implies_alpha(self):
        # The paper: P^perm_alpha implies P_alpha.  With |AS| <= alpha, no
        # receiver can see more than alpha corrupted senders in a round.
        collection = _collection_with_corruption(corrupt_senders=(1,))
        alpha = 1
        assert PermanentAlphaPredicate(alpha).holds(collection)
        assert AlphaSafePredicate(alpha).holds(collection)


class TestBenignPredicate:
    def test_holds_iff_no_corruption(self, perfect_collection):
        assert BenignPredicate().holds(perfect_collection)
        corrupted = _collection_with_corruption()
        assert not BenignPredicate().holds(corrupted)
        assert BenignPredicate().violations(corrupted)

    def test_omissions_are_still_benign(self):
        n = 3
        received_by = {0: {0: 0}, 1: {0: 0, 1: 0, 2: 0}, 2: {}}
        record = make_round(1, n, received_by, intended_value=0)
        collection = HeardOfCollection(n, [record])
        assert BenignPredicate().holds(collection)


class TestCombinators:
    def test_and_requires_all(self, perfect_collection):
        both = AndPredicate([BenignPredicate(), AlphaSafePredicate(0)])
        assert both.holds(perfect_collection)
        corrupted = _collection_with_corruption()
        assert not both.holds(corrupted)
        assert both.violations(corrupted)

    def test_and_flattens_nested(self):
        nested = AndPredicate([AndPredicate([TruePredicate(), TruePredicate()]), TruePredicate()])
        assert len(nested.parts) == 3

    def test_and_operator(self, perfect_collection):
        combined = BenignPredicate() & AlphaSafePredicate(0)
        assert isinstance(combined, AndPredicate)
        assert combined.holds(perfect_collection)

    def test_or_any(self, perfect_collection):
        either = OrPredicate([AlphaSafePredicate(0), PermanentAlphaPredicate(0)])
        assert either.holds(perfect_collection)
        corrupted = _collection_with_corruption(corrupt_senders=(1, 2))
        assert not OrPredicate([AlphaSafePredicate(0), AlphaSafePredicate(1)]).holds(corrupted)
        assert OrPredicate([AlphaSafePredicate(0), AlphaSafePredicate(5)]).holds(corrupted)

    def test_empty_combinators_rejected(self):
        with pytest.raises(ValueError):
            AndPredicate([])
        with pytest.raises(ValueError):
            OrPredicate([])

    def test_true_predicate(self, perfect_collection):
        assert TruePredicate().holds(perfect_collection)
        assert TruePredicate().check_round(perfect_collection[1]) is True


class TestALivePredicate:
    def test_holds_on_perfect_collection(self):
        n = 6
        collection = HeardOfCollection(n, [perfect_round(r, n) for r in (1, 2, 3)])
        predicate = ALivePredicate(n=n, alpha=1, threshold=4, enough=4)
        assert predicate.holds(collection)
        witnesses = predicate.good_rounds(collection)
        assert witnesses and witnesses[0].round_num == 1
        assert witnesses[0].pi2 == frozenset(range(n))

    def test_fails_without_uniformisation_round(self):
        n = 4
        # Everyone only ever hears of themselves: no round has |Pi2| > T.
        received_by = {p: {p: 0} for p in range(n)}
        records = [make_round(r, n, received_by, intended_value=0) for r in (1, 2, 3)]
        collection = HeardOfCollection(n, records)
        predicate = ALivePredicate(n=n, alpha=0, threshold=2, enough=2)
        assert not predicate.holds(collection)
        assert any("uniformisation" in v for v in predicate.violations(collection))

    def test_corrupted_good_round_does_not_count(self):
        n = 4
        received_by = {p: {q: (99 if p == 0 and q == 1 else 0) for q in range(n)} for p in range(n)}
        records = [make_round(1, n, received_by, intended_value=0)]
        # Process 0's HO != SHO, so it cannot be in Pi1; the others still form
        # a big enough Pi1 only if |Pi1| > E - alpha.
        strict = ALivePredicate(n=n, alpha=0, threshold=3, enough=3.5)
        assert strict.good_round_witness(records[0]) is None

    def test_requires_ho_and_sho_recurrence_after_good_round(self):
        n = 4
        good = perfect_round(1, n)
        # After the good round, process 3 is isolated (hears of nobody).
        received_by = {p: {q: 0 for q in range(n)} for p in range(3)}
        received_by[3] = {}
        starving = make_round(2, n, received_by, intended_value=0)
        collection = HeardOfCollection(n, [good, starving])
        predicate = ALivePredicate(n=n, alpha=0, threshold=2, enough=2)
        violations = predicate.violations(collection)
        assert violations, "process 3 never hears of > T processes after the good round"


class TestUSafePredicate:
    def test_minimum_formula(self):
        predicate = USafePredicate(n=9, alpha=2, threshold=6.5, enough=6.5)
        assert predicate.minimum == max(9 + 4 - 6.5 - 1, 6.5, 2)

    def test_holds_and_fails(self):
        n = 4
        collection = HeardOfCollection(n, [perfect_round(1, n)])
        assert USafePredicate(n=n, alpha=0, threshold=2, enough=3).holds(collection)
        # A receiver with only 2 safe receptions fails a minimum of 2.
        received_by = {0: {0: 0, 1: 0}, 1: {q: 0 for q in range(n)}, 2: {q: 0 for q in range(n)}, 3: {q: 0 for q in range(n)}}
        weak = HeardOfCollection(n, [make_round(1, n, received_by, intended_value=0)])
        assert not USafePredicate(n=n, alpha=0, threshold=2, enough=3).holds(weak)
        assert USafePredicate(n=n, alpha=0, threshold=2, enough=3).violations(weak)

    def test_check_round(self):
        n = 4
        record = perfect_round(1, n)
        assert USafePredicate(n=n, alpha=0, threshold=2, enough=3).check_round(record) is True


class TestULivePredicate:
    def test_holds_with_three_clean_rounds_after_even_round(self):
        n = 4
        collection = HeardOfCollection(n, [perfect_round(r, n) for r in range(1, 5)])
        predicate = ULivePredicate(n=n, alpha=0, threshold=2, enough=2)
        assert predicate.holds(collection)
        phases = predicate.good_phases(collection)
        assert phases and phases[0].phase == 1
        assert phases[0].pi0 == frozenset(range(n))

    def test_needs_enough_recorded_rounds(self):
        n = 4
        collection = HeardOfCollection(n, [perfect_round(r, n) for r in (1, 2, 3)])
        predicate = ULivePredicate(n=n, alpha=0, threshold=2, enough=2)
        # Rounds 2*phi0 + 2 = 4 not recorded yet -> no witness.
        assert not predicate.holds(collection)

    def test_corruption_at_round_2phi_blocks_witness(self):
        n = 4
        rounds = [perfect_round(1, n)]
        received_by = {p: {q: (99 if p == 0 and q == 1 else 0) for q in range(n)} for p in range(n)}
        rounds.append(make_round(2, n, received_by, intended_value=0))
        rounds.extend(perfect_round(r, n) for r in (3, 4))
        collection = HeardOfCollection(n, rounds)
        predicate = ULivePredicate(n=n, alpha=0, threshold=2, enough=2)
        assert predicate.good_phase_witness(collection, 1) is None

    def test_different_ho_sets_block_witness(self):
        n = 4
        rounds = [perfect_round(1, n)]
        # Round 2: process 0 hears of a strict subset (but uncorrupted).
        received_by = {p: {q: 0 for q in range(n)} for p in range(n)}
        received_by[0] = {0: 0, 1: 0, 2: 0}
        rounds.append(make_round(2, n, received_by, intended_value=0))
        rounds.extend(perfect_round(r, n) for r in (3, 4))
        collection = HeardOfCollection(n, rounds)
        predicate = ULivePredicate(n=n, alpha=0, threshold=2, enough=2)
        assert predicate.good_phase_witness(collection, 1) is None


class TestByzantinePredicates:
    def test_sync_predicate(self):
        n = 4
        collection = HeardOfCollection(n, [perfect_round(1, n)])
        assert ByzantineSynchronousPredicate(n, 0).holds(collection)
        corrupted = _collection_with_corruption(n=n, corrupt_senders=(1,))
        assert ByzantineSynchronousPredicate(n, 1).holds(corrupted)
        assert not ByzantineSynchronousPredicate(n, 0).holds(corrupted)

    def test_async_predicate(self):
        n = 4
        corrupted = _collection_with_corruption(n=n, corrupt_senders=(1,))
        assert ByzantineAsynchronousPredicate(n, 1).holds(corrupted)
        assert not ByzantineAsynchronousPredicate(n, 0).holds(corrupted)

    def test_async_predicate_ho_requirement(self):
        n = 3
        received_by = {0: {0: 0}, 1: {q: 0 for q in range(n)}, 2: {q: 0 for q in range(n)}}
        collection = HeardOfCollection(n, [make_round(1, n, received_by, intended_value=0)])
        assert not ByzantineAsynchronousPredicate(n, 0).holds(collection)
        assert ByzantineAsynchronousPredicate(n, 2).holds(collection)

    def test_invalid_f(self):
        with pytest.raises(ValueError):
            ByzantineSynchronousPredicate(4, 5)
        with pytest.raises(ValueError):
            ByzantineAsynchronousPredicate(4, -1)

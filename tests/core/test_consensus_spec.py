"""Unit tests for the consensus specification checker (Section 2.3)."""

from repro.core.consensus import ConsensusSpec, DecisionRecord


def _decisions(mapping):
    return [DecisionRecord(process=p, value=v, round_num=r) for p, (v, r) in mapping.items()]


class TestConsensusSpec:
    def test_all_clauses_satisfied(self):
        spec = ConsensusSpec()
        outcome = spec.evaluate(
            initial_values={0: 1, 1: 1, 2: 0},
            decisions=_decisions({0: (1, 2), 1: (1, 2), 2: (1, 3)}),
            rounds_executed=3,
        )
        assert outcome.agreement and outcome.integrity and outcome.termination
        assert outcome.all_satisfied and outcome.safe and outcome.validity
        assert outcome.decision_values == (1,)
        assert outcome.first_decision_round == 2
        assert outcome.last_decision_round == 3
        assert not outcome.violations

    def test_agreement_violation(self):
        outcome = ConsensusSpec().evaluate(
            initial_values={0: 0, 1: 1},
            decisions=_decisions({0: (0, 1), 1: (1, 1)}),
            rounds_executed=1,
        )
        assert not outcome.agreement
        assert not outcome.all_satisfied
        assert any("Agreement" in v for v in outcome.violations)

    def test_integrity_violation_requires_unanimity(self):
        # Mixed initial values: deciding either one is fine for Integrity.
        outcome = ConsensusSpec().evaluate(
            initial_values={0: 0, 1: 1},
            decisions=_decisions({0: (1, 1), 1: (1, 1)}),
            rounds_executed=1,
        )
        assert outcome.integrity
        # Unanimous initial values: deciding something else violates Integrity.
        outcome = ConsensusSpec().evaluate(
            initial_values={0: 5, 1: 5},
            decisions=_decisions({0: (7, 1), 1: (7, 1)}),
            rounds_executed=1,
        )
        assert not outcome.integrity
        assert any("Integrity" in v for v in outcome.violations)

    def test_termination_requires_all_processes(self):
        outcome = ConsensusSpec().evaluate(
            initial_values={0: 0, 1: 0, 2: 0},
            decisions=_decisions({0: (0, 1)}),
            rounds_executed=10,
        )
        assert not outcome.termination
        assert outcome.safe
        assert any("Termination" in v for v in outcome.violations)

    def test_no_decisions_is_safe_but_not_live(self):
        outcome = ConsensusSpec().evaluate(
            initial_values={0: 0, 1: 1}, decisions=[], rounds_executed=5
        )
        assert outcome.safe
        assert not outcome.termination
        assert outcome.first_decision_round is None
        assert outcome.last_decision_round is None
        assert outcome.decision_values == ()

    def test_validity_detects_invented_values(self):
        outcome = ConsensusSpec().evaluate(
            initial_values={0: 0, 1: 1},
            decisions=_decisions({0: (99, 1), 1: (99, 1)}),
            rounds_executed=1,
        )
        assert not outcome.validity
        # Validity is not part of all_satisfied by default.
        assert outcome.agreement and outcome.integrity and outcome.termination
        # But can be promoted to a violation.
        strict = ConsensusSpec(require_validity=True).evaluate(
            initial_values={0: 0, 1: 1},
            decisions=_decisions({0: (99, 1), 1: (99, 1)}),
            rounds_executed=1,
        )
        assert any("Validity" in v for v in strict.violations)

    def test_conflicting_double_decision_breaks_agreement(self):
        decisions = [
            DecisionRecord(process=0, value=0, round_num=1),
            DecisionRecord(process=0, value=1, round_num=2),
            DecisionRecord(process=1, value=0, round_num=1),
        ]
        outcome = ConsensusSpec().evaluate(
            initial_values={0: 0, 1: 0}, decisions=decisions, rounds_executed=2
        )
        assert not outcome.agreement

    def test_summary_mentions_key_facts(self):
        outcome = ConsensusSpec().evaluate(
            initial_values={0: 1, 1: 1},
            decisions=_decisions({0: (1, 2), 1: (1, 2)}),
            rounds_executed=2,
        )
        summary = outcome.summary()
        assert "decided=2/2" in summary
        assert "agreement=ok" in summary

    def test_decision_rounds_property(self):
        outcome = ConsensusSpec().evaluate(
            initial_values={0: 1, 1: 1},
            decisions=_decisions({0: (1, 2), 1: (1, 4)}),
            rounds_executed=4,
        )
        assert outcome.decision_rounds == {0: 2, 1: 4}
        assert outcome.decided_processes == (0, 1)

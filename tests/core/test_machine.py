"""Unit tests for HO machines and their correctness verdicts."""

from repro.algorithms import AteAlgorithm
from repro.core.consensus import ConsensusSpec, DecisionRecord
from repro.core.heardof import HeardOfCollection
from repro.core.machine import HOMachine
from repro.core.parameters import AteParameters
from repro.core.predicates import AlphaSafePredicate, TruePredicate
from tests.conftest import make_round, perfect_round


def _outcome(initial_values, decisions, rounds=3):
    return ConsensusSpec().evaluate(initial_values, decisions, rounds_executed=rounds)


class TestHOMachine:
    def test_default_predicate_is_true(self):
        machine = HOMachine(AteAlgorithm(AteParameters.symmetric(n=4, alpha=0)))
        assert isinstance(machine.predicate, TruePredicate)
        assert "A(" in machine.name

    def test_verdict_predicate_held_and_satisfied(self):
        n = 4
        machine = HOMachine(
            AteAlgorithm(AteParameters.symmetric(n=n, alpha=0)), AlphaSafePredicate(0)
        )
        collection = HeardOfCollection(n, [perfect_round(1, n)])
        outcome = _outcome(
            {p: 0 for p in range(n)},
            [DecisionRecord(process=p, value=0, round_num=1) for p in range(n)],
            rounds=1,
        )
        verdict = machine.check(collection, outcome)
        assert verdict.predicate_held
        assert not verdict.counterexample
        assert not verdict.safety_counterexample

    def test_verdict_counterexample_requires_predicate(self):
        n = 4
        machine = HOMachine(
            AteAlgorithm(AteParameters.symmetric(n=n, alpha=0)), AlphaSafePredicate(0)
        )
        # Corrupted collection: the predicate does not hold, so a failed
        # outcome is NOT a counterexample to the machine's claim.
        received_by = {p: {q: (99 if q == 1 else 0) for q in range(n)} for p in range(n)}
        collection = HeardOfCollection(n, [make_round(1, n, received_by, intended_value=0)])
        bad_outcome = _outcome({p: 0 for p in range(n)}, [], rounds=1)
        verdict = machine.check(collection, bad_outcome)
        assert not verdict.predicate_held
        assert verdict.predicate_violations
        assert not verdict.counterexample

    def test_verdict_flags_genuine_counterexample(self):
        n = 4
        machine = HOMachine(
            AteAlgorithm(AteParameters.symmetric(n=n, alpha=0)), AlphaSafePredicate(0)
        )
        collection = HeardOfCollection(n, [perfect_round(1, n)])
        disagreeing = _outcome(
            {p: p % 2 for p in range(n)},
            [
                DecisionRecord(process=0, value=0, round_num=1),
                DecisionRecord(process=1, value=1, round_num=1),
            ],
            rounds=1,
        )
        verdict = machine.check(collection, disagreeing)
        assert verdict.predicate_held
        assert verdict.counterexample
        assert verdict.safety_counterexample

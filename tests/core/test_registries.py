"""The unified registration surface: backends, planners, step kernels.

All three registries share one contract (``repro.core.registries``):
decorator-friendly ``register_*`` functions that refuse to silently
overwrite built-ins (``overwrite=True`` opts in), and lookups that fail
with a did-you-mean hint plus the full candidate list.
"""

import pytest

from repro.adversary import ReliableAdversary
from repro.adversary.plan import (
    MaskPlanner,
    ReliablePlanner,
    get_planner_factory,
    planner_for,
    register_planner,
)
from repro.algorithms import AteAlgorithm
from repro.algorithms.kernels import (
    AteKernel,
    get_kernel_factory,
    register_kernel,
)
from repro.core.registries import (
    did_you_mean,
    guard_builtin_overwrite,
    unknown_key_error,
)
from repro.simulation.backends import _BACKENDS, get_backend, register_backend


class TestHelpers:
    def test_did_you_mean_close_match(self):
        assert did_you_mean("fsat", ["fast", "reference"]) == " (did you mean 'fast'?)"
        assert did_you_mean("zzz", ["fast", "reference"]) == ""

    def test_guard_builtin_overwrite(self):
        with pytest.raises(ValueError, match="overwrite=True"):
            guard_builtin_overwrite("thing", "'fast'", True, False)
        guard_builtin_overwrite("thing", "'fast'", True, True)
        guard_builtin_overwrite("thing", "'custom'", False, False)

    def test_unknown_key_error_lists_candidates(self):
        error = unknown_key_error("widget", "spunn", ["eggs", "spun"])
        assert "unknown widget 'spunn'" in str(error)
        assert "available: eggs, spun" in str(error)
        assert "did you mean 'spun'?" in str(error)


class TestRegisterBackend:
    def test_builtin_overwrite_refused_without_flag(self):
        class Impostor:
            name = "fast"
            fallback = None
            equivalent_to_reference = True

            def supports(self, algorithm, adversary, config, observers):
                return False

            def run(self, *args):  # pragma: no cover
                raise AssertionError

        with pytest.raises(ValueError, match="built-in engine backend 'fast'"):
            register_backend(Impostor())
        assert type(get_backend("fast")).__name__ == "FastBackend"

    def test_decorator_form_registers_class(self):
        @register_backend
        class EchoBackend:
            name = "echo-test"
            fallback = "reference"
            equivalent_to_reference = True

            def supports(self, algorithm, adversary, config, observers):
                return False

            def run(self, *args):  # pragma: no cover
                raise AssertionError

        try:
            assert isinstance(get_backend("echo-test"), EchoBackend)
        finally:
            del _BACKENDS["echo-test"]

    def test_overwrite_flag_replaces_builtin_and_restores(self):
        original = get_backend("fast")

        class Replacement:
            name = "fast"
            fallback = "reference"
            equivalent_to_reference = True

            def supports(self, algorithm, adversary, config, observers):
                return False

            def run(self, *args):  # pragma: no cover
                raise AssertionError

        register_backend(Replacement(), overwrite=True)
        try:
            assert isinstance(get_backend("fast"), Replacement)
        finally:
            register_backend(original, overwrite=True)
        assert get_backend("fast") is original


class TestRegisterPlanner:
    def test_builtin_overwrite_refused_without_flag(self):
        with pytest.raises(ValueError, match="built-in mask planner"):
            register_planner(ReliableAdversary, ReliablePlanner)

    def test_decorator_form_and_lookup(self):
        class QuietAdversary(ReliableAdversary):
            pass

        @register_planner(QuietAdversary)
        class QuietPlanner(ReliablePlanner):
            pass

        from repro.adversary.plan import _NATIVE_PLANNERS

        try:
            assert get_planner_factory(QuietAdversary) is QuietPlanner
            planner = planner_for(QuietAdversary(), n=4)
            assert isinstance(planner, QuietPlanner)
        finally:
            del _NATIVE_PLANNERS[QuietAdversary]

    def test_unknown_planner_lookup_suggests(self):
        with pytest.raises(ValueError, match="did you mean 'ReliableAdversary'"):
            get_planner_factory("ReliableAdversery")


class TestRegisterKernel:
    def test_builtin_overwrite_refused_without_flag(self):
        with pytest.raises(ValueError, match="built-in step kernel"):
            register_kernel(AteAlgorithm, AteKernel)

    def test_decorator_form_and_lookup(self):
        class HushedAte(AteAlgorithm):
            pass

        @register_kernel(HushedAte)
        class HushedKernel(AteKernel):
            pass

        from repro.algorithms.kernels import _KERNELS

        try:
            assert get_kernel_factory(HushedAte) is HushedKernel
            assert get_kernel_factory("HushedAte") is HushedKernel
        finally:
            del _KERNELS[HushedAte]

    def test_unknown_kernel_lookup_suggests(self):
        with pytest.raises(ValueError, match="did you mean 'AteAlgorithm'"):
            get_kernel_factory("AteAlgorthm")

    def test_direct_form_returns_factory(self):
        class WhisperAte(AteAlgorithm):
            pass

        from repro.algorithms.kernels import _KERNELS

        returned = register_kernel(WhisperAte, AteKernel)
        try:
            assert returned is AteKernel
        finally:
            del _KERNELS[WhisperAte]


class TestPlannerAdapterPath:
    def test_planner_for_never_raises_for_unknown(self):
        class NobodyKnowsMe(ReliableAdversary):
            pass

        planner = planner_for(NobodyKnowsMe(), n=4)
        assert isinstance(planner, MaskPlanner)

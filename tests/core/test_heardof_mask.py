"""Tests for the bitmask reception representation in core.heardof."""

import pytest

from repro.core.heardof import (
    MaskReception,
    MaskRoundRecord,
    ReceptionVector,
    RoundRecord,
    full_mask,
    ids_from_mask,
    iter_mask,
    mask_from_ids,
)


class TestMaskHelpers:
    def test_full_mask(self):
        assert full_mask(0) == 0
        assert full_mask(1) == 0b1
        assert full_mask(4) == 0b1111
        with pytest.raises(ValueError):
            full_mask(-1)

    def test_mask_ids_roundtrip(self):
        for ids in (set(), {0}, {3}, {0, 1, 2}, {1, 5, 63}):
            assert ids_from_mask(mask_from_ids(ids)) == frozenset(ids)

    def test_iter_mask_ascending(self):
        assert list(iter_mask(0b101001)) == [0, 3, 5]
        assert list(iter_mask(0)) == []

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            mask_from_ids([-1])
        with pytest.raises(ValueError):
            ids_from_mask(-1)


def _vector(n=5):
    intended = {s: s * 10 for s in range(n)}
    # 0 dropped, 2 corrupted, rest delivered.
    received = {1: 10, 2: 999, 3: 30, 4: 40}
    return ReceptionVector(receiver=2, received=received, intended=intended)


class TestMaskReception:
    def test_roundtrip_is_lossless(self):
        vector = _vector()
        mask = MaskReception.from_vector(vector, n=5)
        back = mask.to_vector()
        assert back.receiver == vector.receiver
        assert dict(back.received) == dict(vector.received)
        assert dict(back.intended) == dict(vector.intended)
        assert back.heard_of == vector.heard_of
        assert back.safe_heard_of == vector.safe_heard_of
        assert back.altered_heard_of == vector.altered_heard_of

    def test_mask_sets_match_vector_sets(self):
        vector = _vector()
        mask = MaskReception.from_vector(vector, n=5)
        assert mask.heard_of == vector.heard_of
        assert mask.safe_heard_of == vector.safe_heard_of
        assert mask.altered_heard_of == vector.altered_heard_of

    def test_sho_must_be_subset_of_ho(self):
        with pytest.raises(ValueError, match="subset"):
            MaskReception(
                receiver=0, n=2, ho_mask=0b01, sho_mask=0b10,
                received=(7,), intended=(7, 8),
            )

    def test_payload_counts_validated(self):
        with pytest.raises(ValueError, match="received payloads"):
            MaskReception(
                receiver=0, n=2, ho_mask=0b11, sho_mask=0b11,
                received=(7,), intended=(7, 8),
            )


def _broadcast_round(n=4, round_num=1):
    sent = tuple(s + 100 for s in range(n))
    receptions = {}
    for receiver in range(n):
        received = {s: sent[s] for s in range(n)}
        if receiver == 0:
            del received[1]            # omission
        if receiver == 2:
            received[3] = "corrupted"  # corruption
        receptions[receiver] = ReceptionVector(
            receiver=receiver,
            received=received,
            intended={s: sent[s] for s in range(n)},
        )
    return RoundRecord(round_num=round_num, receptions=receptions)


class TestMaskRoundRecord:
    def test_roundtrip_is_lossless(self):
        record = _broadcast_round()
        mask = MaskRoundRecord.from_round_record(record, n=4)
        back = mask.to_round_record()
        assert back.round_num == record.round_num
        for receiver in range(4):
            assert dict(back.receptions[receiver].received) == dict(
                record.receptions[receiver].received
            )
            assert dict(back.receptions[receiver].intended) == dict(
                record.receptions[receiver].intended
            )

    def test_read_api_matches_round_record(self):
        record = _broadcast_round()
        mask = MaskRoundRecord.from_round_record(record, n=4)
        assert mask.processes == record.processes
        for receiver in range(4):
            assert mask.ho(receiver) == record.ho(receiver)
            assert mask.sho(receiver) == record.sho(receiver)
            assert mask.aho(receiver) == record.aho(receiver)
        assert mask.ho_sets() == record.ho_sets()
        assert mask.sho_sets() == record.sho_sets()
        assert mask.kernel() == record.kernel()
        assert mask.safe_kernel() == record.safe_kernel()
        assert mask.altered_span() == record.altered_span()
        assert mask.total_corruptions() == record.total_corruptions()
        assert mask.total_omissions() == record.total_omissions()
        assert mask.max_aho() == record.max_aho()
        assert dict(mask.states_before) == {}
        assert dict(mask.states_after) == {}

    def test_received_payload(self):
        mask = MaskRoundRecord.from_round_record(_broadcast_round(), n=4)
        assert mask.received_payload(1, 0) == 100
        assert mask.received_payload(2, 3) == "corrupted"

    def test_non_broadcast_round_rejected(self):
        n = 2
        receptions = {
            receiver: ReceptionVector(
                receiver=receiver,
                received={},
                # sender 0 prescribes a different payload per receiver.
                intended={0: receiver, 1: 5},
            )
            for receiver in range(n)
        }
        record = RoundRecord(round_num=1, receptions=receptions)
        with pytest.raises(ValueError, match="broadcast"):
            MaskRoundRecord.from_round_record(record, n=n)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="length"):
            MaskRoundRecord(
                round_num=1, n=2, sent=(1,), ho_masks=(0, 0),
                sho_masks=(0, 0), corrupt=(None, None),
            )

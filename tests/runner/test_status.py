"""The observability surface: `repro-ho status`, hardening, trend scaling.

Covers the pure text renderer (golden-tested with COLUMNS pinned to
prove terminal independence), the status CLI's JSON contract, the
fleet_metrics mid-scan hardening (concurrently deleted / truncated
files must degrade, never raise), and the opt-in EWMA trend scaling
policy.
"""

import json

import pytest

from repro.cli import main, render_fleet_status
from repro.runner import Supervisor, Worker, WorkQueue, fleet_status, task_from_spec
from repro.runner.spec import AdversarySpec, AlgorithmSpec, CampaignSpec, PredicateSpec


def tiny_spec(campaign_id="status-test") -> CampaignSpec:
    return CampaignSpec(
        campaign_id=campaign_id,
        algorithms=[AlgorithmSpec("ate", {"alpha": 1})],
        adversaries=[AdversarySpec("corruption-good-rounds", {"alpha": 1, "period": 4})],
        predicates=[PredicateSpec("alpha-safe", {"alpha": 1})],
        ns=[5],
        runs=2,
        base_seed=11,
        max_rounds=25,
    )


SAMPLE_STATUS = {
    "queue": {
        "pending_batches": 2,
        "claimable_units": 7,
        "unclaimed_units": 3,
        "live_leases": {"w0": 1, "w3": 1},
        "deposited_parts": 41,
    },
    "workers": [
        {
            "worker": "w0",
            "age_seconds": 2.13,
            "units": 11.0,
            "cache_hit_ratio": 0.625,
            "counters": {'repro_runner_runs_total{counter="total"}': 88.0},
        },
        {
            "worker": "w3",
            "age_seconds": None,
            "units": 4.0,
            "cache_hit_ratio": None,
            "counters": {},
        },
    ],
    "totals": {
        "repro_worker_units_total": 15.0,
        "repro_queue_claims_total": 16.0,
        "repro_queue_deposits_total": 41.0,
        "repro_worker_steals_total": 2.0,
        "repro_queue_requeues_total": 0.0,
        "repro_queue_lease_breaks_total": 1.0,
        "repro_cache_corrupt_total": 0.0,
    },
}

GOLDEN_RENDER = (
    "queue: pending_batches=2 claimable_units=7 unclaimed_units=3 deposited_parts=41\n"
    "leases: w0=1 w3=1\n"
    "totals: units=15 claims=16 deposits=41 steals=2 requeues=0 "
    "lease_breaks=1 cache_corrupt=0\n"
    "workers: 2 snapshot(s)\n"
    "  worker       age   units    runs    hit%\n"
    "  w0          2.1s      11      88    62.5\n"
    "  w3             ?       4       0       -"
)

GOLDEN_EMPTY = (
    "queue: pending_batches=0 claimable_units=0 unclaimed_units=0 deposited_parts=0\n"
    "leases: none\n"
    "totals: units=0 claims=0 deposits=0 steals=0 requeues=0 "
    "lease_breaks=0 cache_corrupt=0\n"
    "workers: no metric snapshots yet"
)


class TestRenderFleetStatus:
    def test_golden_rendering(self, monkeypatch):
        monkeypatch.setenv("COLUMNS", "80")
        assert render_fleet_status(SAMPLE_STATUS) == GOLDEN_RENDER

    def test_rendering_ignores_terminal_width(self, monkeypatch):
        """The renderer is pure: COLUMNS (and any other terminal state)
        must not change a single byte of the output."""
        monkeypatch.setenv("COLUMNS", "238")
        wide = render_fleet_status(SAMPLE_STATUS)
        monkeypatch.setenv("COLUMNS", "20")
        narrow = render_fleet_status(SAMPLE_STATUS)
        assert wide == narrow == GOLDEN_RENDER

    def test_golden_empty_queue(self, monkeypatch):
        monkeypatch.setenv("COLUMNS", "80")
        assert render_fleet_status({"queue": {}, "workers": [], "totals": {}}) == GOLDEN_EMPTY

    def test_long_worker_ids_widen_the_name_column(self):
        status = {
            "queue": {},
            "workers": [
                {
                    "worker": "sup-host-12345-1",
                    "age_seconds": 1.0,
                    "units": 1.0,
                    "cache_hit_ratio": None,
                    "counters": {},
                }
            ],
            "totals": {},
        }
        lines = render_fleet_status(status).splitlines()
        header = next(line for line in lines if "hit%" in line)
        row = lines[-1]
        assert row.startswith("  sup-host-12345-1")
        # Column boundaries stay aligned: the right edge of every
        # right-justified column matches between header and row.
        assert header.index("age") + 3 == row.index("1.0s") + 4


class TestStatusCommand:
    def test_rejects_non_positive_interval(self, tmp_path, capsys):
        code = main(["status", "--queue-dir", str(tmp_path), "--interval", "0"])
        assert code == 2
        assert "--interval must be > 0" in capsys.readouterr().err

    def test_json_on_empty_queue(self, tmp_path, capsys):
        code = main(["status", "--queue-dir", str(tmp_path), "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert set(payload) == {"queue", "workers", "totals"}
        assert payload["workers"] == []
        assert payload["queue"]["pending_batches"] == 0

    def test_status_after_in_process_campaign(self, tmp_path, capsys):
        """End to end: run a campaign with one in-process worker, deposit
        its snapshot, and check both status output modes see the work."""
        queue = WorkQueue(tmp_path)
        tasks = [task_from_spec(spec) for spec in tiny_spec().expand()]
        queue.submit(tasks, batch_size=2)
        worker = Worker(queue, worker_id="w0", poll_interval=0.01)
        while worker.run_once():
            pass
        queue.write_metric_snapshot("w0")

        code = main(["status", "--queue-dir", str(tmp_path), "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert [entry["worker"] for entry in payload["workers"]] == ["w0"]
        totals = payload["totals"]
        assert totals["repro_worker_units_total"] >= 1
        assert totals["repro_queue_deposits_total"] >= 1
        assert totals['repro_runner_runs_total{counter="total"}'] == len(tasks)

        code = main(["status", "--queue-dir", str(tmp_path)])
        assert code == 0
        text = capsys.readouterr().out
        assert "workers: 1 snapshot(s)" in text
        assert "leases: none" in text

    def test_repro_metrics_off_suppresses_deposits_only(self, tmp_path, monkeypatch):
        """REPRO_METRICS=off gates the snapshot files, not the in-memory
        counters — rows and queue traffic are identical either way."""
        monkeypatch.setenv("REPRO_METRICS", "off")
        queue = WorkQueue(tmp_path)
        tasks = [task_from_spec(spec) for spec in tiny_spec().expand()]
        queue.submit(tasks, batch_size=2)
        worker = Worker(queue, worker_id="w0", poll_interval=0.01)
        while worker.run_once():
            pass
        worker._maybe_deposit_metrics(force=True)
        assert not (tmp_path / "metrics").exists()
        # In-memory instrumentation still ran.
        assert queue.metrics.flat_values()["repro_worker_units_total"] >= 1
        assert fleet_status(queue)["workers"] == []

    def test_json_output_is_strict_and_sorted(self, tmp_path, capsys):
        queue = WorkQueue(tmp_path)
        queue.write_metric_snapshot("w0")
        code = main(["status", "--queue-dir", str(tmp_path), "--json"])
        assert code == 0
        out = capsys.readouterr().out
        # Strict JSON (would raise on NaN/inf) that round-trips sorted.
        payload = json.loads(out)
        assert out.strip() == json.dumps(payload, allow_nan=False, sort_keys=True)


class TestFleetMetricsHardening:
    """fleet_metrics races live workers; it must degrade, never raise."""

    def submit(self, tmp_path):
        queue = WorkQueue(tmp_path)
        tasks = [task_from_spec(spec) for spec in tiny_spec().expand()]
        queue.submit(tasks, batch_size=2)
        return queue

    def test_mid_scan_failure_serves_last_good_values(self, tmp_path, monkeypatch):
        queue = self.submit(tmp_path)
        good = queue.fleet_metrics()
        assert good["claimable_units"] > 0

        def explode(campaign_id):
            raise OSError("simulated store race")

        monkeypatch.setattr(queue, "parts", explode)
        degraded = queue.fleet_metrics()
        assert degraded == good  # last-good, not an exception

    def test_first_scan_failure_degrades_to_zeros(self, tmp_path, monkeypatch):
        queue = self.submit(tmp_path)

        def explode():
            raise OSError("simulated listing race")

        monkeypatch.setattr(queue, "campaigns", explode)
        metrics = queue.fleet_metrics()
        assert metrics == {
            "pending_batches": 0,
            "claimable_units": 0,
            "unclaimed_units": 0,
            "live_leases": {},
            "deposited_parts": 0,
        }

    def test_truncated_manifest_mid_scan_does_not_raise(self, tmp_path):
        """A manifest truncated between the listing and the read (a
        worker mid-replace on a non-atomic store) skips that campaign."""
        queue = self.submit(tmp_path)
        manifest_path = next(tmp_path.glob("campaigns/*/manifest.json"))
        full = manifest_path.read_text(encoding="utf-8")
        manifest_path.write_text(full[: len(full) // 2], encoding="utf-8")
        metrics = queue.fleet_metrics()
        assert metrics["claimable_units"] == 0  # campaign skipped, no raise

    def test_degraded_values_self_correct_on_the_next_clean_scan(
        self, tmp_path, monkeypatch
    ):
        queue = self.submit(tmp_path)
        good = queue.fleet_metrics()
        original = queue.parts

        def explode(campaign_id):
            raise OSError("transient")

        monkeypatch.setattr(queue, "parts", explode)
        assert queue.fleet_metrics() == good
        monkeypatch.setattr(queue, "parts", original)
        assert queue.fleet_metrics() == good

    def test_corrupt_metric_snapshot_is_skipped_by_fleet_status(self, tmp_path):
        queue = WorkQueue(tmp_path)
        queue.write_metric_snapshot("good")
        bad = tmp_path / "metrics" / "bad.json"
        bad.write_text('{"worker": "bad", "written_at": 1, "metrics": {"met', "utf-8")
        status = fleet_status(queue)
        assert [entry["worker"] for entry in status["workers"]] == ["good"]

    def test_malformed_metrics_payload_yields_empty_counters(self, tmp_path):
        """Valid JSON whose metrics block violates the snapshot schema
        must not poison the merge: the shard is listed with no counters."""
        queue = WorkQueue(tmp_path)
        bad = tmp_path / "metrics" / "odd.json"
        bad.parent.mkdir(exist_ok=True)
        bad.write_text(
            json.dumps(
                {
                    "worker": "odd",
                    "written_at": "not-a-time",
                    "metrics": {"metrics": [{"name": "x", "kind": "mystery"}]},
                }
            ),
            "utf-8",
        )
        status = fleet_status(queue)
        (entry,) = status["workers"]
        assert entry["worker"] == "odd"
        assert entry["age_seconds"] is None
        assert entry["counters"] == {}


class _FakeProc:
    def __init__(self):
        self.terminated = False

    def poll(self):
        return 1 if self.terminated else None

    def terminate(self):
        self.terminated = True

    def wait(self, timeout=None):
        return 0

    def kill(self):
        self.terminated = True


class TestTrendScaling:
    def make(self, tmp_path, **kwargs):
        return Supervisor(
            WorkQueue(tmp_path),
            max_workers=8,
            spawn=lambda worker_id: _FakeProc(),
            scale_on_trend=True,
            trend_horizon=10.0,
            **kwargs,
        )

    @staticmethod
    def metrics(claimable=0, deposits=0):
        return {
            "pending_batches": 1 if claimable else 0,
            "claimable_units": claimable,
            "unclaimed_units": claimable,
            "live_leases": {},
            "deposited_parts": deposits,
        }

    def test_falls_back_until_a_rate_exists(self, tmp_path):
        supervisor = self.make(tmp_path)
        demand = supervisor._trend_demand(self.metrics(claimable=5), busy=0, fallback=5)
        assert demand == 5  # no EWMA yet: instantaneous policy

    def test_drained_backlog_keeps_busy_workers(self, tmp_path):
        supervisor = self.make(tmp_path)
        supervisor._deposit_rate_ewma = 3.0
        assert supervisor._trend_demand(self.metrics(claimable=0), busy=2, fallback=7) == 2

    def test_sizes_fleet_to_clear_backlog_within_horizon(self, tmp_path, monkeypatch):
        supervisor = self.make(tmp_path)
        clock = {"now": 100.0}
        monkeypatch.setattr(
            "repro.runner.distributed.time.monotonic", lambda: clock["now"]
        )
        supervisor._trend_demand(self.metrics(claimable=25, deposits=0), 2, 25)
        clock["now"] = 110.0
        # 20 deposits over 10s by 2 busy workers -> 1 unit/s per worker;
        # clearing 25 units within a 10s horizon needs ceil(25/10) = 3.
        demand = supervisor._trend_demand(self.metrics(claimable=25, deposits=20), 2, 25)
        assert supervisor._deposit_rate_ewma == pytest.approx(2.0)
        assert demand == 3

    def test_ewma_smooths_rate_spikes(self, tmp_path, monkeypatch):
        supervisor = self.make(tmp_path, trend_alpha=0.5)
        clock = {"now": 0.0}
        monkeypatch.setattr(
            "repro.runner.distributed.time.monotonic", lambda: clock["now"]
        )
        deposits = 0
        for rate in (10, 10, 0):  # a stall after steady throughput
            clock["now"] += 10.0
            deposits += rate
            supervisor._trend_demand(self.metrics(claimable=50, deposits=deposits), 1, 50)
        # The first poll only seeds the baseline; the folded rates are
        # 1.0 then 0.0, so alpha=0.5 smooths the stall to 0.5, not 0.
        assert supervisor._deposit_rate_ewma == pytest.approx(0.5)

    def test_demand_is_clamped_to_backlog(self, tmp_path):
        supervisor = self.make(tmp_path)
        supervisor._deposit_rate_ewma = 0.001  # nearly stalled fleet
        demand = supervisor._trend_demand(self.metrics(claimable=4), busy=1, fallback=4)
        assert demand == 4  # never asks for more workers than units

    def test_poll_once_with_trend_flag_spawns_and_counts(self, tmp_path, monkeypatch):
        supervisor = self.make(tmp_path, min_workers=0)
        monkeypatch.setattr(
            supervisor.queue, "fleet_metrics", lambda: self.metrics(claimable=3)
        )
        status = supervisor.poll_once()
        assert status["target"] == 3  # fallback path (no rate yet)
        assert len(supervisor.workers) == 3
        flat = supervisor.queue.metrics.flat_values()
        assert flat['repro_supervisor_scale_events_total{direction="up"}'] == 1
        assert flat["repro_supervisor_target_workers"] == 3
        assert flat["repro_supervisor_live_workers"] == 3

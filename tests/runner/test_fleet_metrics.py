"""Unit and property tests for the fleet metrics registry.

The merge algebra is the load-bearing claim: fleet totals are rebuilt
by folding per-worker snapshot shards in whatever order a directory
scan yields them, so ``merge`` must be associative and commutative.
Hypothesis drives that over random shards built from exactly
representable values (multiples of 0.25 — dyadic rationals whose sums
are exact in binary floating point, so the algebraic property is
testable with ``==``).
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runner.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    FLEET_METRICS,
    MetricsRegistry,
    escape_label_value,
    fleet_registry,
    metric_catalogue_markdown,
    snapshot_json,
    unescape_label_value,
)

# ----------------------------------------------------------------------
# Unit tests: children, families, registry discipline
# ----------------------------------------------------------------------


class TestChildren:
    def test_counter_is_monotone(self):
        registry = MetricsRegistry()
        counter = registry.counter("c_total")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5
        with pytest.raises(ValueError):
            counter.inc(-1)
        with pytest.raises(ValueError):
            counter.inc(float("nan"))
        assert counter.value == 3.5

    def test_gauge_moves_both_ways(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("g")
        gauge.set(4)
        gauge.inc()
        gauge.dec(2.5)
        assert gauge.value == 2.5
        with pytest.raises(ValueError):
            gauge.set(float("inf"))

    def test_histogram_buckets_and_totals(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h", buckets=(1.0, 10.0))
        child = hist.labels()
        for value in (0.5, 1.0, 5.0, 100.0):
            child.observe(value)
        assert child.bucket_counts == [2.0, 1.0, 1.0]  # le=1, le=10, +Inf
        assert child.count == 4
        assert child.sum == 106.5
        with pytest.raises(ValueError):
            child.observe(float("nan"))

    def test_labelled_family_keys_children_and_validates(self):
        registry = MetricsRegistry()
        family = registry.counter("runs_total", labelnames=("counter",))
        family.labels(counter="hits").inc(3)
        assert family.labels(counter="hits").value == 3
        assert family.labels(counter="misses").value == 0
        with pytest.raises(ValueError):
            family.labels(wrong="hits")
        with pytest.raises(ValueError):
            family.inc()  # unlabelled proxy invalid on a labelled family


class TestRegistry:
    def test_registration_is_idempotent(self):
        registry = MetricsRegistry()
        first = registry.counter("c_total", "help")
        second = registry.counter("c_total", "help")
        assert first is second

    def test_shape_conflicts_fail_loudly(self):
        registry = MetricsRegistry()
        registry.counter("c_total")
        with pytest.raises(ValueError):
            registry.gauge("c_total")
        with pytest.raises(ValueError):
            registry.counter("c_total", labelnames=("k",))
        registry.histogram("h", buckets=(1.0, 2.0))
        with pytest.raises(ValueError):
            registry.histogram("h", buckets=(1.0, 3.0))

    def test_bad_names_and_buckets_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("1bad")
        with pytest.raises(ValueError):
            registry.counter("bad name")
        with pytest.raises(ValueError):
            registry.histogram("h", buckets=())
        with pytest.raises(ValueError):
            registry.histogram("h", buckets=(1.0, 1.0))

    def test_snapshot_is_deterministic_across_insertion_order(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("x_total").inc(1)
        a.gauge("g").set(2)
        b.gauge("g").set(2)  # reversed declaration order
        b.counter("x_total").inc(1)
        assert snapshot_json(a) == snapshot_json(b)

    def test_flat_values_shape(self):
        registry = MetricsRegistry()
        registry.counter("runs_total", labelnames=("counter",)).labels(
            counter="hits"
        ).inc(2)
        registry.histogram("lat", buckets=(1.0,)).labels().observe(0.5)
        flat = registry.flat_values()
        assert flat['runs_total{counter="hits"}'] == 2
        assert flat["lat_count"] == 1
        assert flat["lat_sum"] == 0.5

    def test_expose_text_prometheus_format(self):
        registry = MetricsRegistry()
        registry.counter("c_total", "a counter").inc(3)
        hist = registry.histogram("h", "a histogram", buckets=(1.0, 10.0))
        hist.labels().observe(0.5)
        hist.labels().observe(5.0)
        text = registry.expose_text()
        assert "# HELP c_total a counter" in text
        assert "# TYPE c_total counter" in text
        assert "c_total 3" in text
        assert "# TYPE h histogram" in text
        assert 'h_bucket{le="1"} 1' in text  # cumulative
        assert 'h_bucket{le="10"} 2' in text
        assert 'h_bucket{le="+Inf"} 2' in text
        assert "h_sum 5.5" in text
        assert "h_count 2" in text

    def test_expose_text_escapes_label_values(self):
        registry = MetricsRegistry()
        registry.counter("c_total", labelnames=("k",)).labels(
            k='quo"te\\back\nline'
        ).inc()
        text = registry.expose_text()
        assert 'c_total{k="quo\\"te\\\\back\\nline"} 1' in text


class TestFleetCatalogue:
    def test_fleet_registry_predeclares_every_spec(self):
        registry = fleet_registry()
        snapshot = registry.snapshot()
        names = {entry["name"] for entry in snapshot["metrics"]}
        assert names == {spec.name for spec in FLEET_METRICS}
        # Unlabelled families are materialised at zero for visibility.
        flat = registry.flat_values()
        assert flat["repro_queue_claims_total"] == 0
        assert flat["repro_queue_claim_latency_seconds_count"] == 0

    def test_catalogue_markdown_covers_every_spec_sorted(self):
        table = metric_catalogue_markdown()
        rows = [line for line in table.splitlines() if line.startswith("| `")]
        names = [row.split("`")[1] for row in rows]
        assert names == sorted(spec.name for spec in FLEET_METRICS)

    def test_malformed_snapshots_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.merge_snapshot({})
        with pytest.raises(ValueError):
            registry.merge_snapshot({"metrics": [{"name": "x", "kind": "mystery"}]})
        with pytest.raises(ValueError):
            registry.merge_snapshot(
                {
                    "metrics": [
                        {
                            "name": "h",
                            "kind": "histogram",
                            "buckets": [1.0],
                            "samples": [
                                {
                                    "labels": [],
                                    "bucket_counts": [1.0],  # wrong length
                                    "sum": 0.5,
                                    "count": 1.0,
                                }
                            ],
                        }
                    ]
                }
            )


# ----------------------------------------------------------------------
# Property tests: merge algebra, escaping, strict JSON
# ----------------------------------------------------------------------

# Exactly representable non-negative quanta: sums of multiples of 0.25
# below 2**40 are exact in float64, so the merge algebra is exact.
_quantum = st.integers(min_value=0, max_value=4000).map(lambda i: i / 4.0)
_signed_quantum = st.integers(min_value=-4000, max_value=4000).map(lambda i: i / 4.0)
_label = st.sampled_from(["a", "b", "c", 'quo"te', "multi\nline", "back\\slash"])

_shard = st.fixed_dictionaries(
    {
        "counters": st.dictionaries(_label, _quantum, max_size=4),
        "gauge": _signed_quantum,
        "observations": st.lists(_quantum, max_size=8),
    }
)


def build_registry(shard):
    """Materialise one worker-shard registry from a strategy draw."""
    registry = MetricsRegistry()
    family = registry.counter("runs_total", "runs", labelnames=("counter",))
    for label, value in shard["counters"].items():
        family.labels(counter=label).inc(value)
    registry.gauge("g", "a gauge").set(shard["gauge"])
    hist = registry.histogram("lat", "latency", buckets=DEFAULT_LATENCY_BUCKETS)
    for value in shard["observations"]:
        hist.labels().observe(value)
    return registry


def merged(*shards):
    out = MetricsRegistry()
    for shard in shards:
        out.merge(shard)
    return out


class TestMergeAlgebra:
    @settings(deadline=None, max_examples=60)
    @given(_shard, _shard, _shard)
    def test_merge_is_associative(self, sa, sb, sc):
        a, b, c = build_registry(sa), build_registry(sb), build_registry(sc)
        left = merged(merged(a, b), c)
        right = merged(a, merged(b, c))
        assert snapshot_json(left) == snapshot_json(right)

    @settings(deadline=None, max_examples=60)
    @given(_shard, _shard)
    def test_merge_is_commutative(self, sa, sb):
        a, b = build_registry(sa), build_registry(sb)
        assert snapshot_json(merged(a, b)) == snapshot_json(merged(b, a))

    @settings(deadline=None, max_examples=60)
    @given(_shard)
    def test_merge_of_empty_is_identity(self, shard):
        registry = build_registry(shard)
        empty = MetricsRegistry()
        assert snapshot_json(merged(registry, empty)) == snapshot_json(registry)

    @settings(deadline=None, max_examples=60)
    @given(_shard)
    def test_snapshot_round_trips_through_strict_json(self, shard):
        registry = build_registry(shard)
        # Strict JSON must serialise (no NaN/inf can have entered) …
        text = json.dumps(registry.snapshot(), allow_nan=False)
        # … and merging the parsed payload into a fresh registry must
        # reproduce the same totals.
        rebuilt = MetricsRegistry()
        rebuilt.merge_snapshot(json.loads(text))
        assert snapshot_json(rebuilt) == snapshot_json(registry)


class TestLabelEscaping:
    @settings(deadline=None, max_examples=120)
    @given(st.text(max_size=40))
    def test_escape_round_trips(self, value):
        assert unescape_label_value(escape_label_value(value)) == value

    @settings(deadline=None, max_examples=120)
    @given(st.text(max_size=40))
    def test_escaped_value_is_single_line_and_quote_safe(self, value):
        escaped = escape_label_value(value)
        assert "\n" not in escaped
        # Any remaining double quote must be preceded by a backslash.
        index = escaped.find('"')
        while index != -1:
            backslashes = 0
            probe = index - 1
            while probe >= 0 and escaped[probe] == "\\":
                backslashes += 1
                probe -= 1
            assert backslashes % 2 == 1
            index = escaped.find('"', index + 1)

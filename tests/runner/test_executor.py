"""Tests for the campaign executor: caching, determinism, parallelism, timeouts.

The adversaries used by the timeout/error tests are defined at module
level so they can be pickled into worker processes.
"""

import json
import time

import pytest

from repro.adversary.base import EdgeAdversary, Fate
from repro.algorithms import AteAlgorithm
from repro.core.predicates import AlphaSafePredicate
from repro.experiments.common import run_batch, run_batch_results
from repro.experiments.table1 import validate_ate_row
from repro.runner import (
    AdversarySpec,
    AlgorithmSpec,
    CampaignRunner,
    CampaignSpec,
    PredicateSpec,
    ResultCache,
    RunTask,
    WorkloadSpec,
    batch_report_from_records,
    campaign_report,
)
from repro.runner.records import RunRecord
from repro.verification.properties import aggregate
from repro.workloads import generators


class SleepyAdversary(EdgeAdversary):
    """Delivers everything, very slowly (for timeout tests)."""

    name = "sleepy"

    def begin_round(self, round_num, intended):
        time.sleep(0.5)

    def fate(self, round_num, sender, receiver, payload):
        return Fate.deliver()


class ExplodingAdversary(EdgeAdversary):
    """Raises mid-run (for error-capture tests)."""

    name = "exploding"

    def fate(self, round_num, sender, receiver, payload):
        raise RuntimeError("boom")


class ReliableAdversaryForReuse(EdgeAdversary):
    """Module-level reliable adversary (picklable into worker processes)."""

    name = "reliable-reuse"

    def fate(self, round_num, sender, receiver, payload):
        return Fate.deliver()


def make_task(n=5, alpha=0, adversary=None, **kwargs) -> RunTask:
    return RunTask(
        algorithm=AteAlgorithm.symmetric(n=n, alpha=alpha),
        adversary=adversary,
        initial_values=generators.split(n),
        max_rounds=kwargs.pop("max_rounds", 20),
        **kwargs,
    )


def demo_campaign(runs=3, base_seed=7) -> CampaignSpec:
    return CampaignSpec(
        campaign_id="executor-test",
        algorithms=[AlgorithmSpec("ate", {"alpha": 1}), AlgorithmSpec("ute", {"alpha": 1})],
        adversaries=[AdversarySpec("corruption-good-rounds", {"alpha": 1, "period": 4})],
        predicates=[PredicateSpec("alpha-safe", {"alpha": 1})],
        ns=[6],
        runs=runs,
        base_seed=base_seed,
        max_rounds=30,
        workload=WorkloadSpec("random"),
    )


class TestBatchParity:
    """run_batch through the runner == the historical serial aggregate."""

    def test_batch_report_matches_direct_aggregation(self):
        n, alpha, runs = 6, 1, 4
        predicate = AlphaSafePredicate(alpha)

        def algorithm_factory(index):
            return AteAlgorithm.symmetric(n=n, alpha=alpha)

        def adversary_factory(index):
            from repro.adversary import PeriodicGoodRoundAdversary, RandomCorruptionAdversary

            return PeriodicGoodRoundAdversary(
                inner=RandomCorruptionAdversary(alpha=alpha, value_domain=(0, 1), seed=index),
                period=4,
            )

        batches = generators.batch(n, runs, seed=3)
        via_runner = run_batch(
            algorithm_factory, adversary_factory, batches, max_rounds=30, predicate=predicate
        )
        results = run_batch_results(algorithm_factory, adversary_factory, batches, max_rounds=30)
        direct = aggregate(results, predicate=predicate)
        assert via_runner.as_dict() == direct.as_dict()
        assert via_runner.decision_rounds == direct.decision_rounds


class TestSeedDeterminism:
    def test_same_spec_gives_byte_identical_records(self):
        first = CampaignRunner().run_campaign(demo_campaign())
        second = CampaignRunner().run_campaign(demo_campaign())
        as_json = lambda res: json.dumps(  # noqa: E731 - tiny helper
            [record.as_dict() for record in res.records], sort_keys=True
        )
        assert as_json(first) == as_json(second)

    def test_same_spec_gives_byte_identical_report_rows(self):
        spec = demo_campaign()
        first = campaign_report(spec, CampaignRunner().run_campaign(spec).records)
        second = campaign_report(spec, CampaignRunner().run_campaign(spec).records)
        assert json.dumps(first.rows, default=str) == json.dumps(second.rows, default=str)

    def test_different_base_seed_changes_runs(self):
        first = CampaignRunner().run_campaign(demo_campaign(base_seed=7))
        second = CampaignRunner().run_campaign(demo_campaign(base_seed=8))
        assert [r.seed for r in first.records] != [r.seed for r in second.records]


class TestParallelEquivalence:
    def test_campaign_records_identical_serial_vs_parallel(self):
        spec = demo_campaign()
        serial = CampaignRunner(jobs=1).run_campaign(spec)
        with CampaignRunner(jobs=2) as runner:
            parallel = runner.run_campaign(spec)
        assert [r.as_dict() for r in serial.records] == [r.as_dict() for r in parallel.records]

    def test_e1_rows_identical_serial_vs_parallel(self):
        serial = validate_ate_row(n=6, runs=3, seed=2, max_rounds=25)
        with CampaignRunner(jobs=2) as runner:
            parallel = validate_ate_row(n=6, runs=3, seed=2, max_rounds=25, runner=runner)
        assert json.dumps(serial.rows, default=str) == json.dumps(parallel.rows, default=str)

    def test_run_simulations_preserves_order(self):
        from repro.adversary import ReliableAdversary

        tasks = [make_task(n=4, adversary=ReliableAdversary()) for _ in range(3)]
        serial = CampaignRunner(jobs=1).run_simulations(tasks)
        with CampaignRunner(jobs=2) as runner:
            parallel = runner.run_simulations(tasks)
        assert [r.outcome.decision_values for r in serial] == [
            r.outcome.decision_values for r in parallel
        ]

    def test_pool_is_reused_across_calls(self):
        with CampaignRunner(jobs=2) as runner:
            runner.run_tasks([make_task(n=4, adversary=ReliableAdversaryForReuse())])
            pool = runner._pool
            runner.run_tasks([make_task(n=4, adversary=ReliableAdversaryForReuse())])
            assert runner._pool is pool
        assert runner._pool is None


class TestResultCache:
    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get("key") is None
        cache.put("key", RunRecord(agreement=True))
        hit = cache.get("key")
        assert hit is not None and hit.agreement
        assert cache.hits == 1 and cache.misses == 1

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("key", RunRecord())
        cache.path_for("key").write_text("{not json", encoding="utf-8")
        assert cache.get("key") is None

    def test_clear_removes_entries(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("a", RunRecord())
        cache.put("b", RunRecord())
        assert len(cache) == 2
        assert cache.clear() == 2
        assert len(cache) == 0

    def test_campaign_rerun_hits_cache_with_identical_records(self, tmp_path):
        spec = demo_campaign()
        first_runner = CampaignRunner(cache=ResultCache(tmp_path))
        first = first_runner.run_campaign(spec)
        assert first_runner.stats.executed == len(first.records)
        assert first_runner.stats.cache_hits == 0

        second_runner = CampaignRunner(cache=ResultCache(tmp_path))
        second = second_runner.run_campaign(spec)
        assert second_runner.stats.executed == 0
        assert second_runner.stats.cache_hits == len(second.records)
        assert [r.as_dict() for r in first.records] == [r.as_dict() for r in second.records]

    def test_driver_rerun_hits_cache_with_identical_rows(self, tmp_path):
        first_runner = CampaignRunner(cache=ResultCache(tmp_path))
        first = validate_ate_row(n=6, runs=3, seed=2, max_rounds=25, runner=first_runner)
        assert first_runner.stats.cache_misses > 0 and first_runner.stats.cache_hits == 0

        second_runner = CampaignRunner(cache=ResultCache(tmp_path))
        second = validate_ate_row(n=6, runs=3, seed=2, max_rounds=25, runner=second_runner)
        assert second_runner.stats.executed == 0
        assert second_runner.stats.cache_hits == first_runner.stats.cache_misses
        assert json.dumps(first.rows, default=str) == json.dumps(second.rows, default=str)

    def test_changed_parameters_do_not_reuse_cache(self, tmp_path):
        runner = CampaignRunner(cache=ResultCache(tmp_path))
        validate_ate_row(n=6, runs=3, seed=2, max_rounds=25, runner=runner)
        other_seed = CampaignRunner(cache=ResultCache(tmp_path))
        validate_ate_row(n=6, runs=3, seed=3, max_rounds=25, runner=other_seed)
        assert other_seed.stats.cache_hits == 0


class TestTimeoutsAndErrors:
    def test_timeout_produces_timed_out_record(self):
        runner = CampaignRunner(timeout=0.1)
        records = runner.run_tasks([make_task(n=4, adversary=SleepyAdversary())])
        assert records[0].timed_out and not records[0].ok
        assert runner.stats.timeouts == 1

    def test_error_propagates_by_default(self):
        with pytest.raises(RuntimeError, match="boom"):
            CampaignRunner().run_tasks([make_task(n=4, adversary=ExplodingAdversary())])

    def test_error_captured_when_requested(self):
        runner = CampaignRunner()
        records = runner.run_tasks(
            [make_task(n=4, adversary=ExplodingAdversary())], capture_errors=True
        )
        assert records[0].error and "boom" in records[0].error
        assert runner.stats.failures == 1

    def test_infeasible_campaign_cell_becomes_failure_record(self):
        spec = CampaignSpec(
            campaign_id="broken",
            algorithms=[AlgorithmSpec("no-such-algorithm")],
            adversaries=[AdversarySpec("reliable")],
            ns=[4],
            runs=2,
        )
        result = CampaignRunner().run_campaign(spec)
        assert len(result.records) == 2
        assert all(not record.ok for record in result.records)
        report = campaign_report(spec, result.records)
        assert report.rows and report.rows[0]["errors"] == 2

    def test_failed_records_cannot_be_aggregated(self):
        with pytest.raises(RuntimeError):
            batch_report_from_records([RunRecord.failure("boom")])

"""Executor batch dispatch: whole task groups through ``run_batch``.

The runner must hand same-shape, same-backend task groups to
batch-capable backends, fall back per-run for everything else (and on
batch failure), and keep every record byte-identical to per-run
execution — cache, stats and ordering included.
"""

import pytest

from repro.adversary import RandomOmissionAdversary, ReliableAdversary
from repro.algorithms import AteAlgorithm, PhaseKingAlgorithm
from repro.runner import CampaignRunner, DecisionReducer, RunTask
from repro.runner.executor import cacheable_key
from repro.simulation.backends import get_backend, run_simulation
from repro.workloads import generators

np = pytest.importorskip("numpy")


def make_task(n=6, seed=0, key=None, backend=None, **kwargs):
    return RunTask(
        algorithm=AteAlgorithm.symmetric(n=n, alpha=1),
        adversary=RandomOmissionAdversary(0.2, seed=seed),
        initial_values=generators.uniform_random(n, seed=seed),
        max_rounds=kwargs.pop("max_rounds", 20),
        key=key,
        seed=seed,
        backend=backend,
        **kwargs,
    )


def dump(records):
    return [record.as_dict() for record in records]


class ShadowFastBackend:
    """An instance whose ``name`` shadows the registered ``fast`` backend.

    Tags every run so dispatch-by-instance is observable; declares
    itself non-equivalent so it must be excluded from caching.
    """

    name = "fast"
    fallback = None
    equivalent_to_reference = False
    supports_batch = False

    def supports(self, algorithm, adversary, config, observers):
        return True

    def run(self, algorithm, initial_values, adversary, config, observers, spec):
        result = get_backend("reference").run(
            algorithm, initial_values, adversary, config, observers, spec
        )
        result.metadata["engine"] = "shadow"
        return result


class FailingBatchBackend:
    """Batch-capable backend whose ``run_batch`` always aborts."""

    name = "failing-batch"
    fallback = None
    equivalent_to_reference = True
    supports_batch = True

    def supports(self, algorithm, adversary, config, observers):
        return get_backend("batch").supports(algorithm, adversary, config, observers)

    def run(self, algorithm, initial_values, adversary, config, observers, spec):
        return get_backend("fast").run(
            algorithm, initial_values, adversary, config, observers, spec
        )

    def run_batch(self, requests):
        raise RuntimeError("batch aborted mid-flight")


class TestRunTasksBatching:
    def test_records_byte_identical_and_counted(self):
        tasks = [make_task(seed=s) for s in range(8)]
        reference = CampaignRunner(backend="reference").run_tasks(
            [make_task(seed=s) for s in range(8)]
        )
        runner = CampaignRunner(backend="batch")
        records = runner.run_tasks(tasks)
        assert dump(records) == dump(reference)
        assert runner.stats.batched == 8
        assert "batched=8" in runner.stats.summary()
        # Every round of every batched run was array-planned: the
        # omission adversary has a registered batch planner.
        planned = sum(r.rounds_executed for r in records)
        assert runner.stats.batch_planned == planned
        assert f"batch_planned={planned}" in runner.stats.summary()

    def test_mixed_batchable_and_per_run_tasks(self):
        """Unsupported tasks split off to per-run dispatch; order and
        records are preserved either way."""
        def build_tasks():
            tasks = [make_task(seed=0), make_task(seed=1, record_states=True)]
            tasks.append(RunTask(
                algorithm=PhaseKingAlgorithm(n=5, f=1),
                adversary=ReliableAdversary(),
                initial_values=generators.split(5),
                max_rounds=20,
            ))
            tasks.append(make_task(seed=2))
            return tasks

        reference = CampaignRunner(backend="reference").run_tasks(build_tasks())
        runner = CampaignRunner(backend="batch")
        records = runner.run_tasks(build_tasks())
        assert dump(records) == dump(reference)
        assert runner.stats.batched == 2  # seeds 0 and 2 only

    def test_pooled_chunks_stay_byte_identical(self):
        tasks = [make_task(seed=s) for s in range(9)]
        serial = CampaignRunner(backend="batch").run_tasks(
            [make_task(seed=s) for s in range(9)]
        )
        with CampaignRunner(backend="batch", jobs=2) as runner:
            pooled = runner.run_tasks(tasks)
            assert runner.stats.batched == 9
            # Planner counts survive the worker-process round trip.
            assert runner.stats.batch_planned == sum(r.rounds_executed for r in pooled)
        assert dump(pooled) == dump(serial)

    def test_timeout_disables_batching(self):
        runner = CampaignRunner(backend="batch", timeout=30.0)
        records = runner.run_tasks([make_task(seed=s) for s in range(3)])
        assert runner.stats.batched == 0
        assert runner.stats.batch_planned == 0
        assert all(record.ok for record in records)

    def test_cache_roundtrip_through_batch(self, tmp_path):
        tasks = [make_task(seed=s, key=f"batch-cache/{s}") for s in range(4)]
        first = CampaignRunner(backend="batch", cache=str(tmp_path))
        initial = first.run_tasks(tasks)
        assert first.stats.cache_misses == 4
        second = CampaignRunner(backend="fast", cache=str(tmp_path))
        replay = second.run_tasks(
            [make_task(seed=s, key=f"batch-cache/{s}") for s in range(4)]
        )
        assert second.stats.cache_hits == 4
        assert dump(replay) == dump(initial)


class TestBatchFailureRecovery:
    def test_failed_batch_falls_back_per_run(self):
        backend = FailingBatchBackend()
        tasks = [make_task(seed=s, backend=backend) for s in range(4)]
        reference = CampaignRunner(backend="reference").run_tasks(
            [make_task(seed=s) for s in range(4)]
        )
        runner = CampaignRunner()
        records = runner.run_tasks(tasks)
        # Runs were routed to the batch, which aborted; per-run retry
        # must still produce the exact per-run records.
        assert runner.stats.batched == 4
        assert dump(records) == dump(reference)

    def test_failed_batch_in_run_reduced(self):
        backend = FailingBatchBackend()
        tasks = [make_task(seed=s, backend=backend, key=f"fail/{s}") for s in range(3)]
        reference = CampaignRunner(backend="reference").run_reduced(
            [make_task(seed=s, key=f"fail/{s}") for s in range(3)], DecisionReducer()
        )
        runner = CampaignRunner()
        records = runner.run_reduced(tasks, DecisionReducer())
        assert runner.stats.batched == 3
        assert dump(records) == dump(reference)


class TestRunReducedBatching:
    def test_reduced_records_byte_identical(self):
        tasks = [make_task(seed=s, key=f"red/{s}") for s in range(6)]
        reference = CampaignRunner(backend="reference").run_reduced(
            [make_task(seed=s, key=f"red/{s}") for s in range(6)], DecisionReducer()
        )
        runner = CampaignRunner(backend="batch")
        records = runner.run_reduced(tasks, DecisionReducer())
        assert dump(records) == dump(reference)
        assert runner.stats.batched == 6


class TestRunSimulationsBatching:
    def test_results_match_reference(self):
        tasks = [make_task(seed=s) for s in range(5)]
        reference = CampaignRunner(backend="reference").run_simulations(
            [make_task(seed=s) for s in range(5)]
        )
        runner = CampaignRunner(backend="batch")
        results = runner.run_simulations(tasks)
        assert runner.stats.batched == 5
        for expected, actual in zip(reference, results):
            assert actual.metadata.get("engine") == "batch"
            assert expected.outcome == actual.outcome
            assert expected.metrics.as_dict() == actual.metrics.as_dict()


class TestBackendInstanceDispatch:
    """Regression: an instance whose name shadows a registered backend
    must be dispatched as-is, not re-resolved through the registry."""

    def test_run_simulation_uses_instance_not_registry(self):
        shadow = ShadowFastBackend()
        task = make_task(seed=1)
        result = run_simulation(
            task.algorithm, task.initial_values, task.adversary,
            backend=shadow,
        )
        assert result.metadata.get("engine") == "shadow"

    def test_run_task_uses_instance_not_registry(self):
        shadow = ShadowFastBackend()
        records = CampaignRunner().run_tasks([make_task(seed=1, backend=shadow)])
        reference = CampaignRunner().run_tasks([make_task(seed=1)])
        # Shadow delegates to reference, so the rows still match — the
        # regression would be silently running the *registered* fast
        # backend instead of the instance.
        assert dump(records) == dump(reference)

    def test_shadow_instance_excluded_from_cache(self, tmp_path):
        shadow = ShadowFastBackend()
        task = make_task(seed=1, key="shadow/0", backend=shadow)
        # Judged by the instance's own equivalence flag, not the
        # registered `fast` entry it shadows.
        assert cacheable_key(task) is None
        runner = CampaignRunner(cache=str(tmp_path))
        runner.run_tasks([task])
        assert runner.stats.cache_misses == 0
        assert runner.stats.cache_hits == 0

    def test_runner_default_backend_instance(self):
        shadow = ShadowFastBackend()
        runner = CampaignRunner(backend=shadow)
        records = runner.run_tasks([make_task(seed=2)])
        reference = CampaignRunner().run_tasks([make_task(seed=2)])
        assert dump(records) == dump(reference)

    def test_batch_capable_instance_is_batched(self):
        backend = get_backend("batch")
        runner = CampaignRunner(backend=backend)
        records = runner.run_tasks([make_task(seed=s) for s in range(3)])
        reference = CampaignRunner().run_tasks([make_task(seed=s) for s in range(3)])
        assert runner.stats.batched == 3
        assert dump(records) == dump(reference)

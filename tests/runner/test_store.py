"""Tests for the pluggable cache stores and crash-safe cache reads."""

import logging
import threading

import pytest

from repro.adversary import ReliableAdversary
from repro.algorithms import AteAlgorithm
from repro.runner import CampaignRunner, ResultCache, RunTask
from repro.runner.records import RunRecord
from repro.runner.reduce import ReducedRecord
from repro.runner.store import (
    CacheStore,
    FsspecObjectClient,
    InMemoryObjectClient,
    LocalDirStore,
    ObjectStore,
    PrefixStore,
    SharedStore,
)
from repro.workloads import generators


@pytest.fixture(params=["local", "shared", "object"])
def store(request, tmp_path):
    """Every CacheStore implementation must pass the same semantics."""
    if request.param == "object":
        return ObjectStore(InMemoryObjectClient())
    cls = {"local": LocalDirStore, "shared": SharedStore}[request.param]
    return cls(tmp_path / "store")


class TestStores:
    def test_read_absent_returns_none(self, store):
        assert store.read_text("aa/missing.json") is None
        assert not store.exists("aa/missing.json")

    def test_write_read_roundtrip(self, store):
        store.write_text("aa/entry.json", '{"x": 1}')
        assert store.read_text("aa/entry.json") == '{"x": 1}'
        assert store.exists("aa/entry.json")

    def test_write_replaces_atomically(self, store):
        store.write_text("e.json", "first")
        store.write_text("e.json", "second")
        assert store.read_text("e.json") == "second"
        # No temp-file droppings left next to the entry.
        assert store.list("*") == ["e.json"]

    def test_try_create_is_exclusive(self, store):
        assert store.try_create("lease.json", "winner")
        assert not store.try_create("lease.json", "loser")
        assert store.read_text("lease.json") == "winner"

    def test_try_create_racers_have_exactly_one_winner(self, store):
        wins = []
        barrier = threading.Barrier(8)

        def racer(tag):
            barrier.wait()
            if store.try_create("contended.json", tag):
                wins.append(tag)

        threads = [threading.Thread(target=racer, args=(f"w{i}",)) for i in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(wins) == 1
        assert store.read_text("contended.json") == wins[0]

    def test_try_create_leaves_no_droppings_and_full_content(self, store):
        """try_create is crash-atomic: the entry appears with its full
        content in one step and no temp files survive either outcome."""
        store.try_create("a.json", "x" * 4096)
        store.try_create("a.json", "loser")
        assert store.list("*") == ["a.json"]
        assert store.read_text("a.json") == "x" * 4096

    def test_delete(self, store):
        store.write_text("gone.json", "x")
        assert store.delete("gone.json")
        assert not store.delete("gone.json")
        assert store.read_text("gone.json") is None

    def test_list_is_sorted_and_relative(self, store):
        store.write_text("b/2.json", "x")
        store.write_text("a/1.json", "x")
        assert store.list("*/*.json") == ["a/1.json", "b/2.json"]

    def test_paths_cannot_escape_the_root(self, store):
        with pytest.raises(ValueError):
            store.read_text("../outside.json")

    def test_protocol_conformance(self, store):
        assert isinstance(store, CacheStore)

    def test_durability_flag(self, tmp_path):
        assert not LocalDirStore(tmp_path / "a").durable
        assert SharedStore(tmp_path / "b").durable


def _task(key="store-test/0000", n=4):
    return RunTask(
        algorithm=AteAlgorithm.symmetric(n=n, alpha=0),
        adversary=ReliableAdversary(),
        initial_values=generators.split(n),
        max_rounds=10,
        key=key,
        seed=3,
    )


class TestCacheOnStores:
    def test_requires_exactly_one_of_root_and_store(self, tmp_path):
        with pytest.raises(ValueError):
            ResultCache()
        with pytest.raises(ValueError):
            ResultCache(tmp_path, store=LocalDirStore(tmp_path))

    def test_shared_store_cache_interoperates_with_local_layout(self, tmp_path):
        """A record written through SharedStore is read back by a plain
        root-based cache on the same directory (same shard layout)."""
        shared = ResultCache(store=SharedStore(tmp_path))
        shared.put("key", RunRecord(agreement=True))
        local = ResultCache(tmp_path)
        hit = local.get("key")
        assert hit is not None and hit.agreement

    def test_len_and_clear_via_store(self, tmp_path):
        cache = ResultCache(store=SharedStore(tmp_path))
        cache.put("a", RunRecord())
        cache.put_reduced("b", ReducedRecord(data={"x": 1}, reducer_name="r"))
        assert len(cache) == 2
        assert cache.clear() == 2
        assert len(cache) == 0


class TestCorruptEntriesAreMisses:
    """A corrupted/truncated shard entry must requeue the run, not raise."""

    def _corrupt(self, cache, key, text):
        cache.path_for(key).write_text(text, encoding="utf-8")

    @pytest.mark.parametrize(
        "garbage",
        [
            "",  # truncated to nothing (crashed writer on a non-atomic fs)
            '{"agreement": true',  # truncated JSON
            "[1, 2, 3]",  # valid JSON, wrong shape
            '{"rounds_executed": "NaN-ish"}',  # schema-corrupt field types
        ],
        ids=["empty", "truncated", "non-object", "bad-field-types"],
    )
    def test_garbage_entry_is_a_miss_and_warns(self, tmp_path, caplog, garbage):
        cache = ResultCache(tmp_path)
        cache.put("key", RunRecord(agreement=True))
        self._corrupt(cache, "key", garbage)
        with caplog.at_level(logging.WARNING, logger="repro.runner.cache"):
            assert cache.get("key") is None
        assert cache.misses == 1 and cache.hits == 0
        assert any("treating as a miss" in message for message in caplog.messages)
        # The bad entry is dropped so it cannot mask the rewrite.
        assert not cache.path_for("key").exists()

    def test_corrupt_reduced_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put_reduced("key", ReducedRecord(data={"x": 1}, reducer_name="r"))
        self._corrupt(cache, "key", '{"data": "not-a-dict"}')
        assert cache.get_reduced("key") is None
        assert cache.misses == 1

    def test_runner_requeues_runs_with_corrupt_entries(self, tmp_path):
        """End to end: a corrupted entry re-executes the run and rewrites
        a good entry — crash-safe distributed writers depend on this."""
        first = CampaignRunner(cache=ResultCache(tmp_path))
        original = first.run_tasks([_task()])[0]
        assert first.stats.cache_misses == 1

        cache = ResultCache(tmp_path)
        cache.path_for(_task().key).write_text('{"agreement"', encoding="utf-8")
        second = CampaignRunner(cache=cache)
        requeued = second.run_tasks([_task()])[0]
        assert second.stats.cache_misses == 1 and second.stats.executed == 1
        assert requeued.as_dict() == original.as_dict()

        # ... and the rewrite healed the entry: third run is a clean hit.
        third = CampaignRunner(cache=ResultCache(tmp_path))
        healed = third.run_tasks([_task()])[0]
        assert third.stats.cache_hits == 1
        assert healed.as_dict() == original.as_dict()


class TestPrefixStore:
    """PrefixStore namespaces another store; escapes must still be caught."""

    def test_requires_non_empty_prefix(self, tmp_path):
        with pytest.raises(ValueError):
            PrefixStore(LocalDirStore(tmp_path), "")
        with pytest.raises(ValueError):
            PrefixStore(LocalDirStore(tmp_path), "///")

    @pytest.mark.parametrize(
        "escape",
        ["../outside.json", "a/../../outside.json", "/etc/passwd"],
        ids=["dotdot", "nested-dotdot", "absolute"],
    )
    def test_paths_cannot_escape_through_the_prefix(self, tmp_path, escape):
        """A prefixed path like ``cache/../x`` still contains the ``..``
        segment, so the inner store's validation must reject it — for
        the filesystem stores and the object store alike."""
        for inner in (SharedStore(tmp_path / "fs"), ObjectStore(InMemoryObjectClient())):
            prefixed = PrefixStore(inner, "cache")
            with pytest.raises(ValueError):
                prefixed.read_text(escape)
            with pytest.raises(ValueError):
                prefixed.write_text(escape, "x")
            with pytest.raises(ValueError):
                prefixed.try_create(escape, "x")
            with pytest.raises(ValueError):
                prefixed.delete(escape)

    def test_namespacing_round_trip(self, tmp_path):
        inner = ObjectStore(InMemoryObjectClient())
        prefixed = PrefixStore(inner, "cache")
        prefixed.write_text("aa/x.json", "{}")
        assert inner.list("cache/*/*.json") == ["cache/aa/x.json"]
        assert prefixed.list("*/*.json") == ["aa/x.json"]
        assert prefixed.read_text("aa/x.json") == "{}"
        assert prefixed.delete("aa/x.json")
        assert inner.list("cache/*/*.json") == []


class TestObjectStoreCorruptEntryParity:
    """ObjectStore-backed caches must requeue corrupt entries exactly
    like SharedStore-backed ones do (mirrors TestCorruptEntriesAreMisses)."""

    @pytest.mark.parametrize(
        "garbage",
        [
            "",  # truncated to nothing
            '{"agreement": true',  # truncated JSON
            "[1, 2, 3]",  # valid JSON, wrong shape
            '{"rounds_executed": "NaN-ish"}',  # schema-corrupt field types
        ],
        ids=["empty", "truncated", "non-object", "bad-field-types"],
    )
    def test_garbage_entry_is_a_miss_and_warns(self, caplog, garbage):
        cache = ResultCache(store=ObjectStore(InMemoryObjectClient()))
        cache.put("key", RunRecord(agreement=True))
        cache.store.write_text(cache.relpath_for("key"), garbage)
        with caplog.at_level(logging.WARNING, logger="repro.runner.cache"):
            assert cache.get("key") is None
        assert cache.misses == 1 and cache.hits == 0
        assert any("treating as a miss" in message for message in caplog.messages)
        # The bad entry is dropped so it cannot mask the rewrite.
        assert not cache.store.exists(cache.relpath_for("key"))

    def test_corrupt_reduced_entry_is_a_miss(self):
        cache = ResultCache(store=ObjectStore(InMemoryObjectClient()))
        cache.put_reduced("key", ReducedRecord(data={"x": 1}, reducer_name="r"))
        cache.store.write_text(cache.relpath_for("key"), '{"data": "not-a-dict"}')
        assert cache.get_reduced("key") is None
        assert cache.misses == 1

    def test_runner_requeues_runs_with_corrupt_entries(self, tmp_path):
        """End to end on the object store: a corrupted entry re-executes
        the run, rewrites a healed entry, and the records match a
        SharedStore-backed cache byte for byte."""
        client = InMemoryObjectClient()
        first = CampaignRunner(cache=ResultCache(store=ObjectStore(client)))
        original = first.run_tasks([_task()])[0]
        assert first.stats.cache_misses == 1

        reference = CampaignRunner(cache=ResultCache(store=SharedStore(tmp_path)))
        assert reference.run_tasks([_task()])[0].as_dict() == original.as_dict()

        cache = ResultCache(store=ObjectStore(client))
        cache.store.write_text(cache.relpath_for(_task().key), '{"agreement"')
        second = CampaignRunner(cache=cache)
        requeued = second.run_tasks([_task()])[0]
        assert second.stats.cache_misses == 1 and second.stats.executed == 1
        assert requeued.as_dict() == original.as_dict()

        # ... and the rewrite healed the entry: third run is a clean hit.
        third = CampaignRunner(cache=ResultCache(store=ObjectStore(client)))
        healed = third.run_tasks([_task()])[0]
        assert third.stats.cache_hits == 1
        assert healed.as_dict() == original.as_dict()


class TestFsspecAdapter:
    def test_fsspec_client_is_import_gated_or_functional(self):
        """Without fsspec installed the adapter must raise a clear
        ImportError; with it, a memory:// filesystem must satisfy the
        store semantics end to end."""
        try:
            import fsspec  # noqa: F401
        except ImportError:
            with pytest.raises(ImportError, match="fsspec"):
                FsspecObjectClient("memory://repro-test")
            return
        store = ObjectStore(FsspecObjectClient("memory://repro-test"))
        store.write_text("aa/x.json", "{}")
        assert store.read_text("aa/x.json") == "{}"
        assert store.list("*/*.json") == ["aa/x.json"]
        assert not store.try_create("aa/x.json", "loser")
        assert store.delete("aa/x.json")

"""Tests for the in-worker reduction path and the runner correctness fixes.

Reducers and adversaries used in worker-pool tests are built from
module-level (picklable) classes only.
"""

import json
import signal
import time

import pytest

from repro.adversary import PeriodicGoodRoundAdversary, RandomCorruptionAdversary
from repro.algorithms import AteAlgorithm
from repro.core.predicates import AlphaSafePredicate, PermanentAlphaPredicate
from repro.experiments.common import run_batch_results, run_reduced_batch
from repro.experiments.liveness import alive_predicate_effect
from repro.runner import (
    AdversarySpec,
    AlgorithmSpec,
    CampaignRunner,
    CampaignSpec,
    DecisionReducer,
    FaultProfileReducer,
    PredicateReducer,
    PredicateSpec,
    ReducedRecord,
    ResultCache,
    RunTask,
    WorkloadSpec,
    batch_report_from_reduced,
    make_reducer,
    reduced_cache_key,
    reduced_campaign_report,
)
from repro.runner.executor import RunTimeoutError, _deadline
from repro.verification.properties import aggregate
from repro.workloads import generators


def make_tasks(count=4, n=5, alpha=1, max_rounds=20, key_prefix=None):
    """Fresh task objects per call: runs mutate adversary state in-process."""
    return [
        RunTask(
            algorithm=AteAlgorithm.symmetric(n=n, alpha=alpha),
            adversary=PeriodicGoodRoundAdversary(
                inner=RandomCorruptionAdversary(
                    alpha=alpha, value_domain=(0, 1), seed=index
                ),
                period=4,
            ),
            initial_values=generators.split(n),
            max_rounds=max_rounds,
            key=f"{key_prefix}/{index:04d}" if key_prefix else None,
            run_index=index,
        )
        for index in range(count)
    ]


def standard_reducers():
    return {
        "decision": DecisionReducer(),
        "fault-profile": FaultProfileReducer(),
        "predicate": PredicateReducer(
            {"safe": AlphaSafePredicate(1), "perm": PermanentAlphaPredicate(1)}
        ),
    }


class TestInWorkerReduction:
    """reducer-in-worker == reducer-in-parent, serial and across workers."""

    @pytest.mark.parametrize("name", ["decision", "fault-profile", "predicate"])
    def test_worker_reduction_matches_parent_reduction(self, name):
        reducer = standard_reducers()[name]
        in_parent = [
            reducer.reduce(result)
            for result in CampaignRunner(jobs=1).run_simulations(make_tasks())
        ]
        serial = CampaignRunner(jobs=1).run_reduced(make_tasks(), reducer)
        with CampaignRunner(jobs=4) as runner:
            parallel = runner.run_reduced(make_tasks(), reducer)
        assert [r.data for r in serial] == in_parent
        assert [r.data for r in parallel] == in_parent
        assert [r.run_index for r in parallel] == [t.run_index for t in make_tasks()]

    def test_reduced_batch_report_matches_full_result_aggregate(self):
        """What the migrated drivers rely on: identical BatchReports."""

        def algorithm_factory(index):
            return AteAlgorithm.symmetric(n=5, alpha=1)

        def adversary_factory(index):
            return PeriodicGoodRoundAdversary(
                inner=RandomCorruptionAdversary(alpha=1, value_domain=(0, 1), seed=index),
                period=4,
            )

        batches = generators.batch(5, 4, seed=3)
        results = run_batch_results(
            algorithm_factory, adversary_factory, batches, max_rounds=20
        )
        direct = aggregate(results, predicate=AlphaSafePredicate(1))
        for jobs in (1, 4):
            with CampaignRunner(jobs=jobs) as runner:
                rows = run_reduced_batch(
                    algorithm_factory,
                    adversary_factory,
                    batches,
                    reducer=PredicateReducer({"safe": AlphaSafePredicate(1)}),
                    max_rounds=20,
                    runner=runner,
                )
            via_reduced = batch_report_from_reduced(rows, predicate_label="safe")
            assert via_reduced.as_dict() == direct.as_dict()
            assert via_reduced.decision_rounds == direct.decision_rounds

    def test_migrated_driver_rows_identical_serial_vs_parallel(self):
        serial = alive_predicate_effect(n=6, alpha=1, runs=4, max_rounds=30)
        with CampaignRunner(jobs=4) as runner:
            parallel = alive_predicate_effect(
                n=6, alpha=1, runs=4, max_rounds=30, runner=runner
            )
        assert json.dumps(serial.rows, default=str) == json.dumps(
            parallel.rows, default=str
        )

    def test_driver_rows_match_legacy_full_result_path(self):
        """The E3 rows computed the pre-migration way (full results shipped
        to the parent, predicate evaluated there) must match the driver."""
        from repro.core.parameters import AteParameters
        from repro.experiments.liveness import _starved_adversary
        from repro.adversary import SequentialAdversary

        n, alpha, runs, max_rounds, seed, period = 6, 1, 4, 30, 3, 4
        params = AteParameters.symmetric(n=n, alpha=alpha)
        predicate = AteAlgorithm(params).liveness_predicate()
        environments = {
            "good-rounds (P^A,live holds)": lambda index: PeriodicGoodRoundAdversary(
                inner=RandomCorruptionAdversary(
                    alpha=alpha, value_domain=(0, 1), seed=seed + index
                ),
                period=period,
            ),
            "starved (no good rounds)": lambda index: _starved_adversary(
                n, float(params.threshold), seed + index
            ),
            "late good rounds (transient bad prefix)": lambda index: SequentialAdversary(
                [
                    (1, _starved_adversary(n, float(params.threshold), seed + index)),
                    (
                        max_rounds // 2,
                        PeriodicGoodRoundAdversary(
                            inner=RandomCorruptionAdversary(
                                alpha=alpha, value_domain=(0, 1), seed=seed + index
                            ),
                            period=period,
                        ),
                    ),
                ]
            ),
        }
        legacy_rows = []
        for label, adversary_factory in environments.items():
            results = run_batch_results(
                algorithm_factory=lambda index: AteAlgorithm(params),
                adversary_factory=adversary_factory,
                initial_value_batches=[generators.split(n) for _ in range(runs)],
                max_rounds=max_rounds,
            )
            batch = aggregate(results)
            held = sum(1 for r in results if predicate.holds(r.collection))
            legacy_rows.append(
                dict(
                    environment=label,
                    predicate_held=f"{held}/{len(results)}",
                    agreement_rate=round(batch.agreement_rate, 3),
                    integrity_rate=round(batch.integrity_rate, 3),
                    termination_rate=round(batch.termination_rate, 3),
                    mean_decision_round=(
                        round(batch.mean_decision_round, 2)
                        if batch.mean_decision_round is not None
                        else None
                    ),
                )
            )
        report = alive_predicate_effect(
            n=n, alpha=alpha, runs=runs, seed=seed, max_rounds=max_rounds,
            good_round_period=period,
        )
        assert report.rows == legacy_rows


class TestReducedCaching:
    def test_rerun_hits_cache_with_identical_records(self, tmp_path):
        reducer = DecisionReducer()
        first_runner = CampaignRunner(cache=ResultCache(tmp_path))
        first = first_runner.run_reduced(make_tasks(key_prefix="batch"), reducer)
        assert first_runner.stats.cache_misses == 4
        assert first_runner.stats.executed == 4

        second_runner = CampaignRunner(cache=ResultCache(tmp_path))
        second = second_runner.run_reduced(make_tasks(key_prefix="batch"), reducer)
        assert second_runner.stats.cache_hits == 4
        assert second_runner.stats.executed == 0
        assert [r.as_dict() for r in first] == [r.as_dict() for r in second]

    def test_reducer_fingerprint_partitions_the_key_space(self, tmp_path):
        cache = ResultCache(tmp_path)
        runner = CampaignRunner(cache=cache)
        runner.run_reduced(make_tasks(key_prefix="batch"), DecisionReducer())
        # A different reducer over the same tasks must not reuse entries.
        other = CampaignRunner(cache=cache)
        other.run_reduced(make_tasks(key_prefix="batch"), FaultProfileReducer())
        assert other.stats.cache_hits == 0 and other.stats.executed == 4
        # Differently parametrised predicate reducers have distinct keys.
        a = PredicateReducer({"p": AlphaSafePredicate(1)})
        b = PredicateReducer({"p": AlphaSafePredicate(2)})
        assert a.fingerprint() != b.fingerprint()
        assert reduced_cache_key("task", a) != reduced_cache_key("task", b)

    def test_reduced_and_full_records_do_not_collide(self, tmp_path):
        cache = ResultCache(tmp_path)
        runner = CampaignRunner(cache=cache)
        runner.run_tasks(make_tasks(key_prefix="batch"))
        reduced_runner = CampaignRunner(cache=cache)
        reduced_runner.run_reduced(make_tasks(key_prefix="batch"), DecisionReducer())
        assert reduced_runner.stats.cache_hits == 0
        assert reduced_runner.stats.executed == 4

    def test_reduced_campaign_serial_parallel_and_cached_identical(self, tmp_path):
        spec = CampaignSpec(
            campaign_id="reduced-test",
            algorithms=[AlgorithmSpec("ate", {"alpha": 1})],
            adversaries=[AdversarySpec("corruption-good-rounds", {"alpha": 1, "period": 4})],
            predicates=[PredicateSpec("alpha-safe", {"alpha": 1})],
            ns=[6],
            runs=3,
            base_seed=7,
            max_rounds=30,
            workload=WorkloadSpec("random"),
        )
        reducer = make_reducer("predicate", {"safe": AlphaSafePredicate(1)})
        serial = CampaignRunner(cache=ResultCache(tmp_path)).run_reduced_campaign(
            spec, reducer
        )
        with CampaignRunner(jobs=4, cache=ResultCache(tmp_path)) as runner:
            parallel = runner.run_reduced_campaign(spec, reducer)
        assert parallel.stats.cache_hits == len(serial.records)
        assert [r.as_dict() for r in serial.records] == [
            r.as_dict() for r in parallel.records
        ]
        first = reduced_campaign_report(spec, reducer, serial.records)
        second = reduced_campaign_report(spec, reducer, parallel.records)
        assert json.dumps(first.rows, default=str) == json.dumps(second.rows, default=str)


class TestCacheStrictness:
    def test_round_trip_preserves_types(self, tmp_path):
        cache = ResultCache(tmp_path)
        record = ReducedRecord.from_data(
            {
                "an_int": 3,
                "a_float": 2.5,
                "a_bool": True,
                "none": None,
                "text": "x",
                "nested": {"list": [1, 2.0, False, None, "y"], "pairs": [[0, 4], [1, 5]]},
            },
            reducer_name="decision",
            key="k",
            seed=9,
        )
        cache.put_reduced("k", record)
        hit = cache.get_reduced("k")
        assert hit is not None
        assert hit.as_dict() == record.as_dict()
        flat = hit.data
        assert type(flat["an_int"]) is int
        assert type(flat["a_float"]) is float
        assert type(flat["a_bool"]) is bool
        assert flat["none"] is None
        assert flat["nested"]["pairs"] == [[0, 4], [1, 5]]

    @pytest.mark.parametrize(
        "bad_cell",
        [
            {"value": {1, 2}},  # set: not JSON-able
            {"value": object()},  # arbitrary object
            {"value": float("nan")},  # NaN: not strict JSON
            {1: "int key"},  # JSON would stringify the key
            {"value": (1, 2)},  # tuple would read back as a list
        ],
    )
    def test_put_rejects_non_json_records(self, tmp_path, bad_cell):
        from repro.runner.records import RunRecord

        cache = ResultCache(tmp_path)
        with pytest.raises((TypeError, ValueError)):
            cache.put("bad", RunRecord(cell=bad_cell))
        assert cache.get("bad") is None  # nothing half-written

    def test_put_rejects_fraction_values(self, tmp_path):
        from fractions import Fraction
        from repro.runner.records import RunRecord

        cache = ResultCache(tmp_path)
        with pytest.raises(TypeError):
            cache.put("frac", RunRecord(cell={"threshold": Fraction(10, 3)}))
        assert len(cache) == 0


class TestRunnerCorrectness:
    def test_campaign_stats_are_per_campaign(self, tmp_path):
        """A reused runner's second campaign must not report the first's totals."""
        spec = CampaignSpec(
            campaign_id="stats-test",
            algorithms=[AlgorithmSpec("ate", {"alpha": 1})],
            adversaries=[AdversarySpec("corruption-good-rounds", {"alpha": 1})],
            ns=[5],
            runs=3,
            base_seed=1,
            max_rounds=20,
        )
        runner = CampaignRunner()
        first = runner.run_campaign(spec)
        second = runner.run_campaign(spec)
        assert first.stats.total == 3 and first.stats.executed == 3
        assert second.stats.total == 3 and second.stats.executed == 3
        assert runner.stats.total == 6  # lifetime counters still accumulate

    def test_reduced_campaign_stats_are_per_campaign(self):
        spec = CampaignSpec(
            campaign_id="stats-test-reduced",
            algorithms=[AlgorithmSpec("ate", {"alpha": 1})],
            adversaries=[AdversarySpec("corruption-good-rounds", {"alpha": 1})],
            ns=[5],
            runs=2,
            base_seed=1,
            max_rounds=20,
        )
        runner = CampaignRunner()
        first = runner.run_reduced_campaign(spec, DecisionReducer())
        second = runner.run_reduced_campaign(spec, DecisionReducer())
        assert first.stats.total == second.stats.total == 2

    def test_run_simulations_raises_on_missing_result(self, monkeypatch):
        import repro.runner.executor as executor_module

        monkeypatch.setattr(executor_module, "_execute_task", lambda task, timeout: None)
        with pytest.raises(RuntimeError, match="run_simulations produced no result"):
            CampaignRunner(jobs=1).run_simulations(make_tasks(count=2))

    def test_reduced_failure_raises_instead_of_desynchronising(self):
        from repro.runner.reduce import reduced_data

        records = [
            ReducedRecord.from_data({"agreement": True}, run_index=0),
            ReducedRecord.failure("boom", run_index=1),
        ]
        with pytest.raises(RuntimeError, match="run_index=1"):
            reduced_data(records)


@pytest.mark.skipif(not hasattr(signal, "SIGALRM"), reason="needs SIGALRM")
class TestNestedDeadlines:
    def test_inner_deadline_restores_outer_itimer(self):
        fired = []
        previous = signal.signal(signal.SIGALRM, lambda signum, frame: fired.append(1))
        try:
            signal.setitimer(signal.ITIMER_REAL, 5.0)
            with _deadline(2.0):
                time.sleep(0.01)
            remaining, _ = signal.getitimer(signal.ITIMER_REAL)
            # The outer timer must still be armed (and have lost the time
            # the inner deadline consumed), not cancelled.
            assert 0.0 < remaining < 5.0
        finally:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            signal.signal(signal.SIGALRM, previous)
        assert not fired

    def test_outer_deadline_still_fires_after_inner_exits(self):
        with pytest.raises(RunTimeoutError, match="0.25"):
            with _deadline(0.25):
                with _deadline(10.0):
                    time.sleep(0.05)
                time.sleep(0.5)

    def test_expired_outer_deadline_preempts_inside_inner(self):
        started = time.monotonic()
        with pytest.raises(RunTimeoutError):
            with _deadline(0.05):
                with _deadline(10.0):
                    # The outer budget expires here; the inner deadline
                    # must not suspend it until the inner block exits.
                    time.sleep(1.0)
        assert time.monotonic() - started < 0.8

"""Tests for campaign specs: expansion, hashing and seed derivation."""

import json

from repro.runner import (
    AdversarySpec,
    AlgorithmSpec,
    CampaignSpec,
    PredicateSpec,
    WorkloadSpec,
    cell_cache_key,
    derive_seed,
    stable_hash,
)


def small_spec(**overrides) -> CampaignSpec:
    fields = dict(
        campaign_id="spec-test",
        algorithms=[AlgorithmSpec("ate", {"alpha": 1}), AlgorithmSpec("ute", {"alpha": 1})],
        adversaries=[AdversarySpec("corruption-good-rounds", {"alpha": 1, "period": 4})],
        predicates=[PredicateSpec("alpha-safe", {"alpha": 1})],
        ns=[5, 7],
        runs=3,
        base_seed=11,
        max_rounds=30,
        workload=WorkloadSpec("random"),
    )
    fields.update(overrides)
    return CampaignSpec(**fields)


class TestStableHash:
    def test_independent_of_key_order(self):
        assert stable_hash({"a": 1, "b": [2, 3]}) == stable_hash({"b": [2, 3], "a": 1})

    def test_sensitive_to_values(self):
        assert stable_hash({"a": 1}) != stable_hash({"a": 2})

    def test_cell_cache_key_sensitive_to_every_field(self):
        base = cell_cache_key(experiment="E1", n=8, alpha=1, seed=3)
        assert cell_cache_key(experiment="E1", n=8, alpha=1, seed=4) != base
        assert cell_cache_key(experiment="E2", n=8, alpha=1, seed=3) != base


class TestSeedDerivation:
    def test_deterministic(self):
        assert derive_seed(1, "cell", 0) == derive_seed(1, "cell", 0)

    def test_distinct_across_runs_and_cells(self):
        seeds = {derive_seed(1, cell, index) for cell in ("a", "b") for index in range(50)}
        assert len(seeds) == 100

    def test_base_seed_changes_everything(self):
        assert derive_seed(1, "cell", 0) != derive_seed(2, "cell", 0)


class TestCampaignExpansion:
    def test_expansion_size_is_grid_times_runs(self):
        spec = small_spec()
        # 2 algorithms x 1 adversary x 1 predicate x 2 ns x 3 runs
        assert len(spec.expand()) == 12

    def test_expansion_is_deterministic(self):
        first = [run.as_dict() for run in small_spec().expand()]
        second = [run.as_dict() for run in small_spec().expand()]
        assert json.dumps(first, sort_keys=True) == json.dumps(second, sort_keys=True)

    def test_config_hashes_unique_per_run(self):
        hashes = [run.config_hash() for run in small_spec().expand()]
        assert len(set(hashes)) == len(hashes)

    def test_base_seed_changes_run_hashes(self):
        baseline = {run.config_hash() for run in small_spec().expand()}
        reseeded = {run.config_hash() for run in small_spec(base_seed=12).expand()}
        assert baseline.isdisjoint(reseeded)

    def test_round_trips_through_dict_and_json(self, tmp_path):
        spec = small_spec()
        assert CampaignSpec.from_dict(spec.as_dict()).config_hash() == spec.config_hash()
        path = tmp_path / "spec.json"
        spec.to_json(path)
        assert CampaignSpec.from_json(path).config_hash() == spec.config_hash()

    def test_rejects_empty_grid_and_bad_runs(self):
        import pytest

        with pytest.raises(ValueError):
            small_spec(runs=0)
        with pytest.raises(ValueError):
            small_spec(algorithms=[])

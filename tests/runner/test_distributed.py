"""Tests for distributed campaign execution: queue, leases, workers.

The heart of the suite is the differential guarantee: serial,
``jobs=4`` and 3-worker distributed executions of one
:class:`CampaignSpec` must produce byte-identical records (and
therefore byte-identical report rows) and share cache entries across
modes.  Worker processes are real OS processes (``multiprocessing``
with the fork start method) coordinating purely through the shared
queue directory, exactly as a multi-machine fleet would.
"""

import json
import multiprocessing
import time

import pytest

from repro.runner import (
    AdversarySpec,
    AlgorithmSpec,
    CampaignRunner,
    CampaignSpec,
    DecisionReducer,
    DistributedCampaignRunner,
    PredicateSpec,
    ResultCache,
    SharedStore,
    Worker,
    WorkQueue,
    campaign_report,
    run_worker,
    task_from_spec,
)
from repro.runner.distributed import Lease

mp = multiprocessing.get_context("fork")

WAIT = 120.0  # generous fleet wait; loaded CI boxes are slow


def demo_spec(runs=3, campaign_id="dist-test") -> CampaignSpec:
    return CampaignSpec(
        campaign_id=campaign_id,
        algorithms=[AlgorithmSpec("ate", {"alpha": 1}), AlgorithmSpec("ute", {"alpha": 1})],
        adversaries=[AdversarySpec("corruption-good-rounds", {"alpha": 1, "period": 4})],
        predicates=[PredicateSpec("alpha-safe", {"alpha": 1})],
        ns=[5, 7],
        runs=runs,
        base_seed=11,
        max_rounds=25,
    )


def slow_spec(runs=4, delay=0.15, campaign_id="dist-slow") -> CampaignSpec:
    """Latency-bound runs: long enough to kill a worker mid-batch."""
    return CampaignSpec(
        campaign_id=campaign_id,
        algorithms=[AlgorithmSpec("ate", {"alpha": 0})],
        adversaries=[AdversarySpec("latency", {"delay_per_round": delay})],
        ns=[4],
        runs=runs,
        base_seed=5,
        max_rounds=12,
    )


def fleet(queue_dir, count, ttl=30.0, max_idle=15.0, jobs=1):
    """Spawn ``count`` worker processes against ``queue_dir``."""
    workers = [
        mp.Process(
            target=run_worker,
            kwargs=dict(
                queue_dir=str(queue_dir),
                worker_id=f"w{index}",
                jobs=jobs,
                ttl=ttl,
                poll_interval=0.05,
                max_idle=max_idle,
            ),
            daemon=True,
        )
        for index in range(count)
    ]
    for worker in workers:
        worker.start()
    return workers


def reap(workers, timeout=60.0):
    for worker in workers:
        worker.join(timeout=timeout)
        if worker.is_alive():
            worker.terminate()
            worker.join(timeout=5.0)


class TestWorkQueue:
    def test_submit_is_idempotent_for_keyed_tasks(self, tmp_path):
        queue = WorkQueue(tmp_path)
        tasks = [task_from_spec(spec) for spec in demo_spec().expand()]
        first = queue.submit(tasks, batch_size=4)
        second = queue.submit(tasks, batch_size=4)
        assert first == second
        manifest = queue.manifest(first)
        assert manifest["num_tasks"] == len(tasks)
        assert manifest["num_batches"] == -(-len(tasks) // 4)
        assert queue.pending(first) == list(range(manifest["num_batches"]))

    def test_batches_preserve_task_order(self, tmp_path):
        queue = WorkQueue(tmp_path)
        tasks = [task_from_spec(spec) for spec in demo_spec().expand()]
        campaign_id = queue.submit(tasks, batch_size=5)
        reloaded = []
        for index in range(queue.manifest(campaign_id)["num_batches"]):
            reloaded.extend(queue.load_batch(campaign_id, index))
        assert [task.key for task in reloaded] == [task.key for task in tasks]
        assert [task.seed for task in reloaded] == [task.seed for task in tasks]

    def test_lease_lifecycle(self, tmp_path):
        queue = WorkQueue(tmp_path)
        lease = queue.try_acquire("c", 0, "alice", ttl=30)
        assert isinstance(lease, Lease)
        # A live lease blocks other workers ...
        assert queue.try_acquire("c", 0, "bob", ttl=30) is None
        # ... heartbeats confirm ownership ...
        assert queue.heartbeat(lease)
        # ... and release frees the batch.
        queue.release(lease)
        assert queue.try_acquire("c", 0, "bob", ttl=30) is not None

    def test_expired_lease_is_broken_and_reclaimed(self, tmp_path):
        queue = WorkQueue(tmp_path)
        dead = queue.try_acquire("c", 0, "crashed", ttl=0.05)
        assert dead is not None
        time.sleep(0.1)  # let the crashed worker's lease expire
        stolen = queue.try_acquire("c", 0, "rescuer", ttl=30)
        assert stolen is not None and stolen.worker_id == "rescuer"
        # The crashed worker's heartbeat now reports the loss.
        assert not queue.heartbeat(dead)
        # ... and its release must not clobber the rescuer's lease.
        queue.release(dead)
        assert queue.try_acquire("c", 0, "third", ttl=30) is None

    def test_corrupt_lease_file_is_broken_and_reclaimed(self, tmp_path):
        """A torn/unreadable lease (foreign non-atomic writer, disk
        mishap) must never make a batch permanently unclaimable."""
        queue = WorkQueue(tmp_path)
        queue.store.write_text("campaigns/c/leases/00000.json", "{torn")
        lease = queue.try_acquire("c", 0, "rescuer", ttl=30)
        assert lease is not None and lease.worker_id == "rescuer"

    def test_corrupt_result_file_is_discarded_and_requeued(self, tmp_path):
        """An unreadable result deposit must not wedge the campaign:
        collect() discards it with a clear error and the batch counts
        as pending again."""
        queue = WorkQueue(tmp_path)
        tasks = [task_from_spec(spec) for spec in demo_spec(runs=1).expand()]
        campaign_id = queue.submit(tasks, batch_size=len(tasks))
        queue.store.write_text(f"campaigns/{campaign_id}/results/00000.json", "")
        assert queue.pending(campaign_id) == []  # looks complete ...
        with pytest.raises(RuntimeError, match="corrupt deposit discarded"):
            queue.collect(campaign_id)
        assert queue.pending(campaign_id) == [0]  # ... requeued now

    def test_result_files_are_first_writer_wins(self, tmp_path):
        from repro.runner.records import RunnerStats, RunRecord

        queue = WorkQueue(tmp_path)
        record = RunRecord(agreement=True)
        assert queue.write_result("c", 0, [record], "alice", RunnerStats())
        assert not queue.write_result("c", 0, [record], "bob", RunnerStats())
        assert queue.batch_done("c", 0)


class TestDifferentialModes:
    """Serial == --jobs 4 == 3-worker distributed, byte for byte."""

    @pytest.mark.slow
    def test_three_modes_byte_identical_and_cache_shared(self, tmp_path):
        spec = demo_spec()

        serial = CampaignRunner(cache=ResultCache(tmp_path / "serial-cache"))
        serial_result = serial.run_campaign(spec)

        with CampaignRunner(jobs=4, cache=ResultCache(tmp_path / "jobs-cache")) as parallel:
            parallel_result = parallel.run_campaign(spec)

        queue_dir = tmp_path / "queue"
        workers = fleet(queue_dir, 3)
        try:
            runner = DistributedCampaignRunner(queue_dir, batch_size=3, wait_timeout=WAIT)
            distributed_result = runner.run_campaign(spec)
        finally:
            reap(workers)

        rows_serial = [record.as_dict() for record in serial_result.records]
        assert rows_serial == [record.as_dict() for record in parallel_result.records]
        assert rows_serial == [record.as_dict() for record in distributed_result.records]
        # All three distributed workers are real processes with their
        # own stats; at least one actually executed something.
        assert sum(s.executed for s in runner.worker_stats.values()) == len(rows_serial)

        # Cross-mode cache hits: a serial runner pointed at the fleet's
        # shared cache re-runs nothing and reads identical records.
        cross = CampaignRunner(cache=ResultCache(store=SharedStore(queue_dir / "cache")))
        cross_result = cross.run_campaign(spec)
        assert cross.stats.cache_hits == len(rows_serial) and cross.stats.executed == 0
        assert rows_serial == [record.as_dict() for record in cross_result.records]

        # ... and a re-submission to the fleet is a full cache hit that
        # needs no workers at all (none are running anymore).
        resubmit = DistributedCampaignRunner(queue_dir, batch_size=3, wait_timeout=5)
        resubmit_result = resubmit.run_campaign(spec)
        assert resubmit.stats.cache_hits == len(rows_serial)
        assert rows_serial == [record.as_dict() for record in resubmit_result.records]

        # Identical records imply identical report rows.
        assert (
            campaign_report(spec, serial_result.records).render()
            == campaign_report(spec, distributed_result.records).render()
        )

    @pytest.mark.slow
    def test_reduced_campaign_distributed_matches_serial(self, tmp_path):
        spec = demo_spec(campaign_id="dist-reduced")
        reducer = DecisionReducer()
        serial = CampaignRunner().run_reduced_campaign(spec, reducer)

        queue_dir = tmp_path / "queue"
        workers = fleet(queue_dir, 2)
        try:
            runner = DistributedCampaignRunner(queue_dir, batch_size=4, wait_timeout=WAIT)
            distributed = runner.run_reduced_campaign(spec, reducer)
        finally:
            reap(workers)

        assert [record.as_dict() for record in serial.records] == [
            record.as_dict() for record in distributed.records
        ]

    @pytest.mark.slow
    def test_driver_runner_kwarg_accepts_distributed_runner(self, tmp_path):
        """E1-E12 sweeps run fleet-wide with no driver changes: the
        distributed runner rides the existing ``runner=`` kwarg."""
        from repro.experiments.table1 import validate_ate_row

        serial_report = validate_ate_row(n=6, runs=3, seed=2, max_rounds=25)

        queue_dir = tmp_path / "queue"
        workers = fleet(queue_dir, 2)
        try:
            runner = DistributedCampaignRunner(queue_dir, batch_size=2, wait_timeout=WAIT)
            distributed_report = validate_ate_row(n=6, runs=3, seed=2, max_rounds=25, runner=runner)
        finally:
            reap(workers)
        assert json.dumps(serial_report.rows, default=str) == json.dumps(
            distributed_report.rows, default=str
        )


class TestCrashRecovery:
    @pytest.mark.slow
    def test_killed_worker_loses_lease_and_batch_is_requeued(self, tmp_path):
        """A worker killed mid-batch must not wedge the campaign: after
        its lease TTL expires another worker re-claims the batch and the
        final report is identical to an uninterrupted run."""
        spec = slow_spec()
        expected = CampaignRunner().run_campaign(spec)

        queue_dir = tmp_path / "queue"
        runner = DistributedCampaignRunner(queue_dir, batch_size=4, wait_timeout=WAIT)
        campaign_id = runner.submit_campaign(spec)
        assert campaign_id is not None

        victim = mp.Process(
            target=run_worker,
            kwargs=dict(
                queue_dir=str(queue_dir), worker_id="victim", ttl=1.0, poll_interval=0.05
            ),
            daemon=True,
        )
        victim.start()
        # Wait until the victim holds the batch lease, then SIGKILL it
        # mid-execution (each batch takes ~runs × rounds × delay
        # seconds, far longer than this poll loop).
        queue = WorkQueue(queue_dir)
        deadline = time.monotonic() + 30
        while not queue.store.list("campaigns/*/leases/*.json"):
            assert time.monotonic() < deadline, "victim never claimed the batch"
            time.sleep(0.02)
        victim.kill()
        victim.join(timeout=10)
        assert queue.pending(campaign_id), "victim should have died before completing"

        rescuer = mp.Process(
            target=run_worker,
            kwargs=dict(
                queue_dir=str(queue_dir),
                worker_id="rescuer",
                ttl=1.0,
                poll_interval=0.05,
                max_idle=10.0,
            ),
            daemon=True,
        )
        rescuer.start()
        try:
            runner.wait(campaign_id)
        finally:
            reap([rescuer])

        recovered = runner.run_campaign(spec)  # collects, all work done
        assert [record.as_dict() for record in expected.records] == [
            record.as_dict() for record in recovered.records
        ]
        # The deposited results are authored by the rescuer, not the victim.
        _, worker_stats = queue.collect(campaign_id)
        assert set(worker_stats) == {"rescuer"}


class TestSubmitterSemantics:
    def test_run_simulations_is_refused(self, tmp_path):
        runner = DistributedCampaignRunner(tmp_path)
        with pytest.raises(NotImplementedError):
            runner.run_simulations([])

    def test_non_equivalent_backends_are_rejected_on_both_sides(self, tmp_path):
        """The async engine is not result-identical, so neither a
        submitter nor a fleet worker may run on it — its records would
        depend on which worker executed a batch."""
        with pytest.raises(ValueError, match="not result-identical"):
            DistributedCampaignRunner(tmp_path / "queue", backend="async")
        with pytest.raises(ValueError, match="not result-identical"):
            Worker(WorkQueue(tmp_path / "queue"), backend="async")

    def test_failed_runs_are_not_sticky_across_submissions(self, tmp_path):
        """A campaign whose runs failed must be retryable: the failed
        batches' results are dropped, so the next submission re-executes
        them instead of replaying stale failure records forever."""
        spec = demo_spec(runs=2, campaign_id="dist-retry")
        queue = WorkQueue(tmp_path / "queue")
        runner = DistributedCampaignRunner(queue.queue_dir, batch_size=4, wait_timeout=30)

        campaign_id = runner.submit_campaign(spec)
        # A worker with an absurd per-run timeout: every run times out.
        broken = Worker(queue, worker_id="broken", timeout=1e-9, ttl=30)
        while broken.run_once():
            pass
        broken.close()
        first = runner.run_campaign(spec)
        assert all(record.timed_out for record in first.records)
        assert first.stats.timeouts == len(first.records)
        # The failure reports were collected, then dropped from the queue.
        assert queue.pending(campaign_id) != []

        healthy = Worker(queue, worker_id="healthy", ttl=30)
        while healthy.run_once():
            pass
        healthy.close()
        second = runner.run_campaign(spec)
        expected = CampaignRunner().run_campaign(spec)
        assert [record.as_dict() for record in expected.records] == [
            record.as_dict() for record in second.records
        ]

    def test_unreadable_batch_is_poisoned_not_hung(self, tmp_path):
        """A batch whose payload cannot be decoded (version-skewed fleet
        member, torn copy) must surface a hard error at the submitter
        instead of leaving the campaign pending forever."""
        spec = demo_spec(runs=2, campaign_id="dist-poison")
        queue = WorkQueue(tmp_path / "queue")
        runner = DistributedCampaignRunner(queue.queue_dir, batch_size=16, wait_timeout=30)
        campaign_id = runner.submit_campaign(spec)
        queue.store.write_text(
            f"campaigns/{campaign_id}/batches/00000.json", '{"tasks": ["not-base64!"]}'
        )
        worker = Worker(queue, worker_id="skewed", ttl=30)
        for _ in range(3):  # poisoned after three local load failures
            worker.run_once()
        worker.close()
        assert queue.complete(campaign_id)
        with pytest.raises(RuntimeError, match="poisoned"):
            queue.collect(campaign_id)
        # The poison marker is not sticky: the batch requeues, so fixing
        # the fleet and resubmitting retries it.
        assert queue.pending(campaign_id) == [0]

    def test_injected_store_carries_the_cache_too(self, tmp_path):
        """WorkQueue(store=...) must route the fleet cache through the
        injected store, not silently fall back to the filesystem."""
        from repro.runner import LocalDirStore
        from repro.runner.records import RunRecord

        store = LocalDirStore(tmp_path / "custom")
        queue = WorkQueue(tmp_path / "ignored-dir", store=store)
        queue.cache.put("key", RunRecord(agreement=True))
        assert store.list("cache/*/*.json")  # lives inside the injected store
        assert not (tmp_path / "ignored-dir").exists() or not list(
            (tmp_path / "ignored-dir").rglob("*.json")
        )
        assert queue.cache.get("key").agreement

    def test_capture_errors_false_raises_on_failures(self, tmp_path):
        """Infeasible cells become failure records with capture_errors
        (campaign path) but raise without it (driver batch path)."""
        bad = CampaignSpec(
            campaign_id="dist-bad",
            algorithms=[AlgorithmSpec("no-such-algorithm")],
            adversaries=[AdversarySpec("reliable")],
            ns=[4],
            runs=2,
            max_rounds=5,
        )
        runner = DistributedCampaignRunner(tmp_path / "queue", wait_timeout=5)
        result = runner.run_campaign(bad)
        assert all(not record.ok for record in result.records)
        assert result.stats.failures == len(result.records)

    def test_inline_worker_drains_reduced_submission(self, tmp_path):
        """The queue protocol round-trips reducers: a submitted reduced
        campaign drained by an in-process Worker equals the serial run."""
        spec = demo_spec(runs=2, campaign_id="dist-inline")
        reducer = DecisionReducer()
        serial = CampaignRunner().run_reduced_campaign(spec, reducer)

        runner = DistributedCampaignRunner(tmp_path / "queue", batch_size=4, wait_timeout=30)
        campaign_id = runner.submit_campaign(spec, reducer)
        worker = Worker(WorkQueue(tmp_path / "queue"), worker_id="inline", ttl=30)
        assert worker.run_once() > 0
        worker.close()
        assert runner.queue.complete(campaign_id)

        distributed = runner.run_reduced_campaign(spec, reducer)
        assert [record.as_dict() for record in serial.records] == [
            record.as_dict() for record in distributed.records
        ]


class TestCampaignCliExitCodes:
    def _spec_file(self, tmp_path, spec):
        path = tmp_path / "spec.json"
        spec.to_json(path)
        return str(path)

    def test_failed_campaign_exits_nonzero_with_summary(self, tmp_path, capsys):
        from repro.cli import main

        bad = CampaignSpec(
            campaign_id="cli-bad",
            algorithms=[AlgorithmSpec("no-such-algorithm")],
            adversaries=[AdversarySpec("reliable")],
            ns=[4],
            runs=2,
            max_rounds=5,
        )
        code = main(
            ["campaign", "--spec", self._spec_file(tmp_path, bad), "--no-cache", "--jobs", "1"]
        )
        captured = capsys.readouterr()
        assert code == 1
        assert "2 of 2 runs failed" in captured.err
        assert "no-such-algorithm" in captured.err

    def test_invalid_batch_size_exits_cleanly(self, capsys):
        from repro.cli import main

        assert main(["campaign", "E1", "--distributed", "--batch-size", "0"]) == 2
        assert "--batch-size must be >= 1" in capsys.readouterr().err

    def test_green_campaign_exits_zero(self, tmp_path, capsys):
        from repro.cli import main

        code = main(
            [
                "campaign",
                "--spec",
                self._spec_file(tmp_path, demo_spec(runs=1, campaign_id="cli-ok")),
                "--no-cache",
                "--jobs",
                "1",
            ]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "runs failed" not in captured.err

    @pytest.mark.slow
    def test_submit_worker_wait_cli_flow(self, tmp_path, capsys):
        """submit-only → worker --max-idle → submit+wait: the distributed
        CLI quickstart, entirely through ``main()``."""
        from repro.cli import main

        spec_file = self._spec_file(tmp_path, demo_spec(runs=2, campaign_id="cli-dist"))
        queue_dir = str(tmp_path / "queue")

        assert main(["campaign", "--spec", spec_file, "--jobs", "1", "--cache-dir",
                     str(tmp_path / "serial-cache")]) == 0
        serial_rows = [
            line for line in capsys.readouterr().out.splitlines()
            if not line.startswith(("runner[", "worker["))
        ]

        assert main(["campaign", "--spec", spec_file, "--distributed",
                     "--queue-dir", queue_dir, "--submit-only"]) == 0
        assert "submitted" in capsys.readouterr().out

        assert main(["worker", "--queue-dir", queue_dir, "--max-idle", "0.5",
                     "--poll-interval", "0.05", "--ttl", "5"]) == 0
        assert "executed" in capsys.readouterr().out

        assert main(["campaign", "--spec", spec_file, "--distributed",
                     "--queue-dir", queue_dir, "--wait-timeout", "30"]) == 0
        distributed_out = capsys.readouterr().out
        distributed_rows = [
            line for line in distributed_out.splitlines()
            if not line.startswith(("runner[", "worker["))
        ]
        assert serial_rows == distributed_rows
        # The fleet already executed everything: the submit+wait step is
        # a full cache hit (the per-worker summary only appears on
        # invocations whose runs the fleet executed live).
        assert "cache_hits=8" in distributed_out

"""Tests for distributed campaign execution: queue, leases, workers.

The heart of the suite is the differential guarantee: serial,
``jobs=4`` and 3-worker distributed executions of one
:class:`CampaignSpec` must produce byte-identical records (and
therefore byte-identical report rows) and share cache entries across
modes.  Worker processes are real OS processes (``multiprocessing``
with the fork start method) coordinating purely through the shared
queue directory, exactly as a multi-machine fleet would.

The elastic-fleet suites extend the guarantee to work stealing (cut
markers must survive races and crashes without ever changing a record)
and to the auto-scaling supervisor (spawn/retire decisions, the retire
marker shutdown protocol, end-to-end drain).
"""

import json
import multiprocessing
import os
import random
import signal
import threading
import time

import pytest

from repro.runner import (
    AdversarySpec,
    AlgorithmSpec,
    CampaignRunner,
    CampaignSpec,
    DecisionReducer,
    DistributedCampaignRunner,
    InMemoryObjectClient,
    ObjectStore,
    PredicateSpec,
    ResultCache,
    SharedStore,
    Supervisor,
    Worker,
    WorkQueue,
    campaign_report,
    fleet_status,
    run_worker,
    task_from_spec,
)
from repro.runner.distributed import Lease

mp = multiprocessing.get_context("fork")

WAIT = 120.0  # generous fleet wait; loaded CI boxes are slow


def demo_spec(runs=3, campaign_id="dist-test") -> CampaignSpec:
    return CampaignSpec(
        campaign_id=campaign_id,
        algorithms=[AlgorithmSpec("ate", {"alpha": 1}), AlgorithmSpec("ute", {"alpha": 1})],
        adversaries=[AdversarySpec("corruption-good-rounds", {"alpha": 1, "period": 4})],
        predicates=[PredicateSpec("alpha-safe", {"alpha": 1})],
        ns=[5, 7],
        runs=runs,
        base_seed=11,
        max_rounds=25,
    )


def slow_spec(runs=4, delay=0.15, campaign_id="dist-slow") -> CampaignSpec:
    """Latency-bound runs: long enough to kill a worker mid-batch."""
    return CampaignSpec(
        campaign_id=campaign_id,
        algorithms=[AlgorithmSpec("ate", {"alpha": 0})],
        adversaries=[AdversarySpec("latency", {"delay_per_round": delay})],
        ns=[4],
        runs=runs,
        base_seed=5,
        max_rounds=12,
    )


def fleet(queue_dir, count, ttl=30.0, max_idle=15.0, jobs=1):
    """Spawn ``count`` worker processes against ``queue_dir``."""
    workers = [
        mp.Process(
            target=run_worker,
            kwargs=dict(
                queue_dir=str(queue_dir),
                worker_id=f"w{index}",
                jobs=jobs,
                ttl=ttl,
                poll_interval=0.05,
                max_idle=max_idle,
            ),
            daemon=True,
        )
        for index in range(count)
    ]
    for worker in workers:
        worker.start()
    return workers


def reap(workers, timeout=60.0):
    for worker in workers:
        worker.join(timeout=timeout)
        if worker.is_alive():
            worker.terminate()
            worker.join(timeout=5.0)


class TestWorkQueue:
    def test_submit_is_idempotent_for_keyed_tasks(self, tmp_path):
        queue = WorkQueue(tmp_path)
        tasks = [task_from_spec(spec) for spec in demo_spec().expand()]
        first = queue.submit(tasks, batch_size=4)
        second = queue.submit(tasks, batch_size=4)
        assert first == second
        manifest = queue.manifest(first)
        assert manifest["num_tasks"] == len(tasks)
        assert manifest["num_batches"] == -(-len(tasks) // 4)
        assert queue.pending(first) == list(range(manifest["num_batches"]))

    def test_batches_preserve_task_order(self, tmp_path):
        queue = WorkQueue(tmp_path)
        tasks = [task_from_spec(spec) for spec in demo_spec().expand()]
        campaign_id = queue.submit(tasks, batch_size=5)
        reloaded = []
        for index in range(queue.manifest(campaign_id)["num_batches"]):
            reloaded.extend(queue.load_batch(campaign_id, index))
        assert [task.key for task in reloaded] == [task.key for task in tasks]
        assert [task.seed for task in reloaded] == [task.seed for task in tasks]

    def test_lease_lifecycle(self, tmp_path):
        queue = WorkQueue(tmp_path)
        lease = queue.try_acquire("c", 0, "alice", ttl=30)
        assert isinstance(lease, Lease)
        # A live lease blocks other workers ...
        assert queue.try_acquire("c", 0, "bob", ttl=30) is None
        # ... heartbeats confirm ownership ...
        assert queue.heartbeat(lease)
        # ... and release frees the batch.
        queue.release(lease)
        assert queue.try_acquire("c", 0, "bob", ttl=30) is not None

    def test_expired_lease_is_broken_and_reclaimed(self, tmp_path):
        queue = WorkQueue(tmp_path)
        dead = queue.try_acquire("c", 0, "crashed", ttl=0.05)
        assert dead is not None
        time.sleep(0.1)  # let the crashed worker's lease expire
        stolen = queue.try_acquire("c", 0, "rescuer", ttl=30)
        assert stolen is not None and stolen.worker_id == "rescuer"
        # The crashed worker's heartbeat now reports the loss.
        assert not queue.heartbeat(dead)
        # ... and its release must not clobber the rescuer's lease.
        queue.release(dead)
        assert queue.try_acquire("c", 0, "third", ttl=30) is None

    def test_corrupt_lease_file_is_broken_and_reclaimed(self, tmp_path):
        """A torn/unreadable lease (foreign non-atomic writer, disk
        mishap) must never make a batch permanently unclaimable."""
        queue = WorkQueue(tmp_path)
        queue.store.write_text("campaigns/c/leases/00000.p00000.json", "{torn")
        lease = queue.try_acquire("c", 0, "rescuer", ttl=30)
        assert lease is not None and lease.worker_id == "rescuer"

    def test_corrupt_result_file_is_discarded_and_requeued(self, tmp_path):
        """An unreadable result deposit must not wedge the campaign:
        collect() discards it with a clear error and the batch counts
        as pending again."""
        queue = WorkQueue(tmp_path)
        tasks = [task_from_spec(spec) for spec in demo_spec(runs=1).expand()]
        campaign_id = queue.submit(tasks, batch_size=len(tasks))
        queue.store.write_text(
            f"campaigns/{campaign_id}/results/00000.p00000-{len(tasks):05d}.json", ""
        )
        assert queue.pending(campaign_id) == []  # looks complete ...
        with pytest.raises(RuntimeError, match="corrupt deposit discarded"):
            queue.collect(campaign_id)
        assert queue.pending(campaign_id) == [0]  # ... requeued now

    def test_misfilled_deposit_is_discarded_and_requeued(self, tmp_path):
        """A parseable deposit whose record list under-fills the interval
        its filename declares (torn write on a non-atomic backend) must
        be discarded at collect time — filename-based coverage would
        otherwise satisfy wait() while collect() fails forever."""
        queue = WorkQueue(tmp_path)
        tasks = [task_from_spec(spec) for spec in demo_spec(runs=1).expand()]
        campaign_id = queue.submit(tasks, batch_size=len(tasks))
        queue.store.write_text(
            f"campaigns/{campaign_id}/results/00000.p00000-{len(tasks):05d}.json",
            json.dumps({"schema": 2, "worker": "liar", "start": 0,
                        "stats": {}, "records": []}),
        )
        assert queue.pending(campaign_id) == []  # filenames look complete ...
        with pytest.raises(RuntimeError, match="mis-filled deposit discarded"):
            queue.collect(campaign_id)
        assert queue.pending(campaign_id) == [0]  # ... requeued for real now

    def test_result_files_are_first_writer_wins(self, tmp_path):
        from repro.runner.records import RunnerStats, RunRecord

        queue = WorkQueue(tmp_path)
        tasks = [task_from_spec(spec) for spec in demo_spec(runs=1).expand()]
        campaign_id = queue.submit(tasks, batch_size=len(tasks))
        records = [RunRecord(agreement=True) for _ in tasks]
        assert queue.write_result(campaign_id, 0, 0, records, "alice", RunnerStats())
        assert not queue.write_result(campaign_id, 0, 0, records, "bob", RunnerStats())
        assert queue.batch_done(campaign_id, 0)
        _, worker_stats = queue.collect(campaign_id)
        assert set(worker_stats) == {"alice"}


class TestDifferentialModes:
    """Serial == --jobs 4 == 3-worker distributed, byte for byte."""

    @pytest.mark.slow
    def test_three_modes_byte_identical_and_cache_shared(self, tmp_path):
        spec = demo_spec()

        serial = CampaignRunner(cache=ResultCache(tmp_path / "serial-cache"))
        serial_result = serial.run_campaign(spec)

        with CampaignRunner(jobs=4, cache=ResultCache(tmp_path / "jobs-cache")) as parallel:
            parallel_result = parallel.run_campaign(spec)

        queue_dir = tmp_path / "queue"
        workers = fleet(queue_dir, 3)
        try:
            runner = DistributedCampaignRunner(queue_dir, batch_size=3, wait_timeout=WAIT)
            distributed_result = runner.run_campaign(spec)
        finally:
            reap(workers)

        rows_serial = [record.as_dict() for record in serial_result.records]
        assert rows_serial == [record.as_dict() for record in parallel_result.records]
        assert rows_serial == [record.as_dict() for record in distributed_result.records]
        # All three distributed workers are real processes with their
        # own stats; at least one actually executed something.
        assert sum(s.executed for s in runner.worker_stats.values()) == len(rows_serial)

        # Cross-mode cache hits: a serial runner pointed at the fleet's
        # shared cache re-runs nothing and reads identical records.
        cross = CampaignRunner(cache=ResultCache(store=SharedStore(queue_dir / "cache")))
        cross_result = cross.run_campaign(spec)
        assert cross.stats.cache_hits == len(rows_serial) and cross.stats.executed == 0
        assert rows_serial == [record.as_dict() for record in cross_result.records]

        # ... and a re-submission to the fleet is a full cache hit that
        # needs no workers at all (none are running anymore).
        resubmit = DistributedCampaignRunner(queue_dir, batch_size=3, wait_timeout=5)
        resubmit_result = resubmit.run_campaign(spec)
        assert resubmit.stats.cache_hits == len(rows_serial)
        assert rows_serial == [record.as_dict() for record in resubmit_result.records]

        # Identical records imply identical report rows.
        assert (
            campaign_report(spec, serial_result.records).render()
            == campaign_report(spec, distributed_result.records).render()
        )

    @pytest.mark.slow
    def test_reduced_campaign_distributed_matches_serial(self, tmp_path):
        spec = demo_spec(campaign_id="dist-reduced")
        reducer = DecisionReducer()
        serial = CampaignRunner().run_reduced_campaign(spec, reducer)

        queue_dir = tmp_path / "queue"
        workers = fleet(queue_dir, 2)
        try:
            runner = DistributedCampaignRunner(queue_dir, batch_size=4, wait_timeout=WAIT)
            distributed = runner.run_reduced_campaign(spec, reducer)
        finally:
            reap(workers)

        assert [record.as_dict() for record in serial.records] == [
            record.as_dict() for record in distributed.records
        ]

    @pytest.mark.slow
    def test_driver_runner_kwarg_accepts_distributed_runner(self, tmp_path):
        """E1-E12 sweeps run fleet-wide with no driver changes: the
        distributed runner rides the existing ``runner=`` kwarg."""
        from repro.experiments.table1 import validate_ate_row

        serial_report = validate_ate_row(n=6, runs=3, seed=2, max_rounds=25)

        queue_dir = tmp_path / "queue"
        workers = fleet(queue_dir, 2)
        try:
            runner = DistributedCampaignRunner(queue_dir, batch_size=2, wait_timeout=WAIT)
            distributed_report = validate_ate_row(n=6, runs=3, seed=2, max_rounds=25, runner=runner)
        finally:
            reap(workers)
        assert json.dumps(serial_report.rows, default=str) == json.dumps(
            distributed_report.rows, default=str
        )


class TestCrashRecovery:
    @pytest.mark.slow
    def test_killed_worker_loses_lease_and_batch_is_requeued(self, tmp_path):
        """A worker killed mid-batch must not wedge the campaign: after
        its lease TTL expires another worker re-claims the batch and the
        final report is identical to an uninterrupted run."""
        spec = slow_spec()
        expected = CampaignRunner().run_campaign(spec)

        queue_dir = tmp_path / "queue"
        runner = DistributedCampaignRunner(queue_dir, batch_size=4, wait_timeout=WAIT)
        campaign_id = runner.submit_campaign(spec)
        assert campaign_id is not None

        victim = mp.Process(
            target=run_worker,
            kwargs=dict(
                queue_dir=str(queue_dir), worker_id="victim", ttl=1.0, poll_interval=0.05
            ),
            daemon=True,
        )
        victim.start()
        # Wait until the victim holds the batch lease, then SIGKILL it
        # mid-execution (each batch takes ~runs × rounds × delay
        # seconds, far longer than this poll loop).
        queue = WorkQueue(queue_dir)
        deadline = time.monotonic() + 30
        while not queue.store.list("campaigns/*/leases/*.json"):
            assert time.monotonic() < deadline, "victim never claimed the batch"
            time.sleep(0.02)
        victim.kill()
        victim.join(timeout=10)
        assert queue.pending(campaign_id), "victim should have died before completing"

        rescuer = mp.Process(
            target=run_worker,
            kwargs=dict(
                queue_dir=str(queue_dir),
                worker_id="rescuer",
                ttl=1.0,
                poll_interval=0.05,
                max_idle=10.0,
            ),
            daemon=True,
        )
        rescuer.start()
        try:
            runner.wait(campaign_id)
        finally:
            reap([rescuer])

        recovered = runner.run_campaign(spec)  # collects, all work done
        assert [record.as_dict() for record in expected.records] == [
            record.as_dict() for record in recovered.records
        ]
        # The deposited results are authored by the rescuer, not the victim.
        _, worker_stats = queue.collect(campaign_id)
        assert set(worker_stats) == {"rescuer"}


class TestSubmitterSemantics:
    def test_run_simulations_is_refused(self, tmp_path):
        runner = DistributedCampaignRunner(tmp_path)
        with pytest.raises(NotImplementedError):
            runner.run_simulations([])

    def test_non_equivalent_backends_are_rejected_on_both_sides(self, tmp_path):
        """The async engine is not result-identical, so neither a
        submitter nor a fleet worker may run on it — its records would
        depend on which worker executed a batch."""
        with pytest.raises(ValueError, match="not result-identical"):
            DistributedCampaignRunner(tmp_path / "queue", backend="async")
        with pytest.raises(ValueError, match="not result-identical"):
            Worker(WorkQueue(tmp_path / "queue"), backend="async")

    def test_failed_runs_are_not_sticky_across_submissions(self, tmp_path):
        """A campaign whose runs failed must be retryable: the failed
        batches' results are dropped, so the next submission re-executes
        them instead of replaying stale failure records forever."""
        spec = demo_spec(runs=2, campaign_id="dist-retry")
        queue = WorkQueue(tmp_path / "queue")
        runner = DistributedCampaignRunner(queue.queue_dir, batch_size=4, wait_timeout=30)

        campaign_id = runner.submit_campaign(spec)
        # A worker with an absurd per-run timeout: every run times out.
        broken = Worker(queue, worker_id="broken", timeout=1e-9, ttl=30)
        while broken.run_once():
            pass
        broken.close()
        first = runner.run_campaign(spec)
        assert all(record.timed_out for record in first.records)
        assert first.stats.timeouts == len(first.records)
        # The failure reports were collected, then dropped from the queue.
        assert queue.pending(campaign_id) != []

        healthy = Worker(queue, worker_id="healthy", ttl=30)
        while healthy.run_once():
            pass
        healthy.close()
        second = runner.run_campaign(spec)
        expected = CampaignRunner().run_campaign(spec)
        assert [record.as_dict() for record in expected.records] == [
            record.as_dict() for record in second.records
        ]

    def test_unreadable_batch_is_poisoned_not_hung(self, tmp_path):
        """A batch whose payload cannot be decoded (version-skewed fleet
        member, torn copy) must surface a hard error at the submitter
        instead of leaving the campaign pending forever."""
        spec = demo_spec(runs=2, campaign_id="dist-poison")
        queue = WorkQueue(tmp_path / "queue")
        runner = DistributedCampaignRunner(queue.queue_dir, batch_size=16, wait_timeout=30)
        campaign_id = runner.submit_campaign(spec)
        queue.store.write_text(
            f"campaigns/{campaign_id}/batches/00000.json", '{"tasks": ["not-base64!"]}'
        )
        worker = Worker(queue, worker_id="skewed", ttl=30)
        for _ in range(3):  # poisoned after three local load failures
            worker.run_once()
        worker.close()
        assert queue.complete(campaign_id)
        with pytest.raises(RuntimeError, match="poisoned"):
            queue.collect(campaign_id)
        # The poison marker is not sticky: the batch requeues, so fixing
        # the fleet and resubmitting retries it.
        assert queue.pending(campaign_id) == [0]

    def test_injected_store_carries_the_cache_too(self, tmp_path):
        """WorkQueue(store=...) must route the fleet cache through the
        injected store, not silently fall back to the filesystem."""
        from repro.runner import LocalDirStore
        from repro.runner.records import RunRecord

        store = LocalDirStore(tmp_path / "custom")
        queue = WorkQueue(tmp_path / "ignored-dir", store=store)
        queue.cache.put("key", RunRecord(agreement=True))
        assert store.list("cache/*/*.json")  # lives inside the injected store
        assert not (tmp_path / "ignored-dir").exists() or not list(
            (tmp_path / "ignored-dir").rglob("*.json")
        )
        assert queue.cache.get("key").agreement

    def test_capture_errors_false_raises_on_failures(self, tmp_path):
        """Infeasible cells become failure records with capture_errors
        (campaign path) but raise without it (driver batch path)."""
        bad = CampaignSpec(
            campaign_id="dist-bad",
            algorithms=[AlgorithmSpec("no-such-algorithm")],
            adversaries=[AdversarySpec("reliable")],
            ns=[4],
            runs=2,
            max_rounds=5,
        )
        runner = DistributedCampaignRunner(tmp_path / "queue", wait_timeout=5)
        result = runner.run_campaign(bad)
        assert all(not record.ok for record in result.records)
        assert result.stats.failures == len(result.records)

    def test_inline_worker_drains_reduced_submission(self, tmp_path):
        """The queue protocol round-trips reducers: a submitted reduced
        campaign drained by an in-process Worker equals the serial run."""
        spec = demo_spec(runs=2, campaign_id="dist-inline")
        reducer = DecisionReducer()
        serial = CampaignRunner().run_reduced_campaign(spec, reducer)

        runner = DistributedCampaignRunner(tmp_path / "queue", batch_size=4, wait_timeout=30)
        campaign_id = runner.submit_campaign(spec, reducer)
        worker = Worker(WorkQueue(tmp_path / "queue"), worker_id="inline", ttl=30)
        assert worker.run_once() > 0
        worker.close()
        assert runner.queue.complete(campaign_id)

        distributed = runner.run_reduced_campaign(spec, reducer)
        assert [record.as_dict() for record in serial.records] == [
            record.as_dict() for record in distributed.records
        ]


class TestCampaignCliExitCodes:
    def _spec_file(self, tmp_path, spec):
        path = tmp_path / "spec.json"
        spec.to_json(path)
        return str(path)

    def test_failed_campaign_exits_nonzero_with_summary(self, tmp_path, capsys):
        from repro.cli import main

        bad = CampaignSpec(
            campaign_id="cli-bad",
            algorithms=[AlgorithmSpec("no-such-algorithm")],
            adversaries=[AdversarySpec("reliable")],
            ns=[4],
            runs=2,
            max_rounds=5,
        )
        code = main(
            ["campaign", "--spec", self._spec_file(tmp_path, bad), "--no-cache", "--jobs", "1"]
        )
        captured = capsys.readouterr()
        assert code == 1
        assert "2 of 2 runs failed" in captured.err
        assert "no-such-algorithm" in captured.err

    def test_invalid_batch_size_exits_cleanly(self, capsys):
        from repro.cli import main

        assert main(["campaign", "E1", "--distributed", "--batch-size", "0"]) == 2
        assert "--batch-size must be >= 1" in capsys.readouterr().err

    def test_autoscale_flag_validation_exits_cleanly(self, capsys):
        from repro.cli import main

        assert main(["campaign", "E1", "--autoscale"]) == 2
        assert "--autoscale requires --distributed" in capsys.readouterr().err
        # Bad bounds surface the Supervisor's message, never a traceback.
        assert main(["campaign", "E1", "--distributed", "--autoscale",
                     "--max-workers", "0"]) == 2
        assert "max_workers" in capsys.readouterr().err

    def test_green_campaign_exits_zero(self, tmp_path, capsys):
        from repro.cli import main

        code = main(
            [
                "campaign",
                "--spec",
                self._spec_file(tmp_path, demo_spec(runs=1, campaign_id="cli-ok")),
                "--no-cache",
                "--jobs",
                "1",
            ]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "runs failed" not in captured.err

    @pytest.mark.slow
    def test_submit_worker_wait_cli_flow(self, tmp_path, capsys):
        """submit-only → worker --max-idle → submit+wait: the distributed
        CLI quickstart, entirely through ``main()``."""
        from repro.cli import main

        spec_file = self._spec_file(tmp_path, demo_spec(runs=2, campaign_id="cli-dist"))
        queue_dir = str(tmp_path / "queue")

        assert main(["campaign", "--spec", spec_file, "--jobs", "1", "--cache-dir",
                     str(tmp_path / "serial-cache")]) == 0
        serial_rows = [
            line for line in capsys.readouterr().out.splitlines()
            if not line.startswith(("runner[", "worker["))
        ]

        assert main(["campaign", "--spec", spec_file, "--distributed",
                     "--queue-dir", queue_dir, "--submit-only"]) == 0
        assert "submitted" in capsys.readouterr().out

        assert main(["worker", "--queue-dir", queue_dir, "--max-idle", "0.5",
                     "--poll-interval", "0.05", "--ttl", "5"]) == 0
        assert "executed" in capsys.readouterr().out

        assert main(["campaign", "--spec", spec_file, "--distributed",
                     "--queue-dir", queue_dir, "--wait-timeout", "30"]) == 0
        distributed_out = capsys.readouterr().out
        distributed_rows = [
            line for line in distributed_out.splitlines()
            if not line.startswith(("runner[", "worker["))
        ]
        assert serial_rows == distributed_rows
        # The fleet already executed everything: the submit+wait step is
        # a full cache hit (the per-worker summary only appears on
        # invocations whose runs the fleet executed live).
        assert "cache_hits=8" in distributed_out


def wait_until(condition, timeout=30.0, interval=0.02, message="condition"):
    """Poll ``condition`` until truthy; fail the test on timeout."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        value = condition()
        if value:
            return value
        time.sleep(interval)
    raise AssertionError(f"timed out waiting for {message}")


class TestWorkStealing:
    """Cross-batch work stealing: cut markers, races, crashes."""

    def test_claimable_units_follow_cut_markers(self, tmp_path):
        queue = WorkQueue(tmp_path)
        tasks = [task_from_spec(spec) for spec in demo_spec(runs=2).expand()]
        campaign_id = queue.submit(tasks, batch_size=len(tasks))
        manifest = queue.manifest(campaign_id)
        num = len(tasks)
        assert queue.claimable_units(campaign_id, manifest) == [(0, 0, num)]
        assert queue.add_cut(campaign_id, 0, num // 2, "thief")
        assert queue.claimable_units(campaign_id, manifest) == [
            (0, 0, num // 2),
            (0, num // 2, num),
        ]
        # A covered interval disappears from the scan.
        from repro.runner.records import RunnerStats, RunRecord

        queue.write_result(
            campaign_id, 0, num // 2,
            [RunRecord(agreement=True) for _ in range(num - num // 2)],
            "thief", RunnerStats(),
        )
        assert queue.claimable_units(campaign_id, manifest) == [(0, 0, num // 2)]
        assert queue.pending(campaign_id) == [0]

    def test_claimed_interval_already_covered_is_not_reexecuted(self, tmp_path):
        """A peer can deposit an interval between a worker's claimable
        scan and its claim; the post-claim coverage re-check must skip
        it instead of re-executing a whole shadowed duplicate."""
        from repro.runner.records import RunnerStats, RunRecord

        queue = WorkQueue(tmp_path)
        tasks = [task_from_spec(spec) for spec in demo_spec(runs=2).expand()]
        campaign_id = queue.submit(tasks, batch_size=len(tasks))
        num = len(tasks)
        queue.add_cut(campaign_id, 0, num // 2, "thief")
        assert not queue.unit_covered(campaign_id, 0, 0, num)
        queue.write_result(
            campaign_id, 0, num // 2,
            [RunRecord(agreement=True) for _ in range(num - num // 2)],
            "peer", RunnerStats(),
        )
        assert queue.unit_covered(campaign_id, 0, num // 2, num)
        assert not queue.unit_covered(campaign_id, 0, 0, num)

    def test_fully_shadowed_deposits_do_not_inflate_worker_stats(self, tmp_path):
        """Two racing deposits covering the same interval under different
        filenames must count once: the shadowed part's stats are dropped."""
        from repro.runner.records import RunnerStats, RunRecord

        queue = WorkQueue(tmp_path)
        tasks = [task_from_spec(spec) for spec in demo_spec(runs=1).expand()]
        campaign_id = queue.submit(tasks, batch_size=len(tasks))
        num = len(tasks)
        records = [RunRecord(agreement=True) for _ in range(num)]
        winner_stats = RunnerStats(total=num, executed=num)
        loser_stats = RunnerStats(total=num - 1, executed=num - 1)
        assert queue.write_result(campaign_id, 0, 0, records, "winner", winner_stats)
        # The loser deposited a different interval shape (lease race after
        # a cut), so first-writer-wins on the filename does not stop it.
        assert queue.write_result(
            campaign_id, 0, 1, records[1:], "loser", loser_stats
        )
        _, worker_stats = queue.collect(campaign_id)
        assert set(worker_stats) == {"winner"}
        assert worker_stats["winner"].executed == num

    def test_unit_end_shrinks_when_a_cut_lands_mid_flight(self, tmp_path):
        queue = WorkQueue(tmp_path)
        tasks = [task_from_spec(spec) for spec in demo_spec(runs=2).expand()]
        campaign_id = queue.submit(tasks, batch_size=len(tasks))
        num = len(tasks)
        assert queue.unit_end(campaign_id, 0, 0, num) == num
        queue.add_cut(campaign_id, 0, 5, "thief")
        assert queue.unit_end(campaign_id, 0, 0, num) == 5
        assert queue.unit_end(campaign_id, 0, 5, num) == num

    @pytest.mark.slow
    def test_steal_splits_straggler_batch(self, tmp_path):
        """An idle worker must split a straggler batch via a cut marker
        and execute the stolen tail — with records byte-identical to an
        unstolen run."""
        spec = slow_spec(runs=8, delay=0.1, campaign_id="dist-steal")
        serial = CampaignRunner().run_campaign(spec)

        queue_dir = tmp_path / "queue"
        runner = DistributedCampaignRunner(queue_dir, batch_size=8, wait_timeout=WAIT)
        campaign_id = runner.submit_campaign(spec)

        victim = Worker(WorkQueue(queue_dir), worker_id="victim", ttl=30, poll_interval=0.05)
        thief = Worker(WorkQueue(queue_dir), worker_id="thief", ttl=30, poll_interval=0.05)
        victim_thread = threading.Thread(target=victim.run, kwargs=dict(max_idle=2.0))
        victim_thread.start()
        queue = WorkQueue(queue_dir)
        # Only start the thief once the victim holds the batch, so the
        # claim/steal roles are deterministic.
        wait_until(
            lambda: queue.leases(campaign_id), message="victim to claim the batch"
        )
        thief_thread = threading.Thread(target=thief.run, kwargs=dict(max_idle=2.0))
        thief_thread.start()
        victim_thread.join()
        thief_thread.join()
        victim.close()
        thief.close()

        assert thief.steals >= 1, "idle worker never stole from the straggler"
        assert queue.cuts(campaign_id), "no cut marker was recorded"
        parts = queue.parts(campaign_id)[0]
        assert len(parts) >= 2, f"expected split deposits, got {parts}"

        result = runner.run_campaign(spec)
        assert [record.as_dict() for record in serial.records] == [
            record.as_dict() for record in result.records
        ]
        _, worker_stats = queue.collect(campaign_id)
        assert set(worker_stats) == {"victim", "thief"}

    def test_steal_race_has_single_cut_and_lease_winner(self, tmp_path):
        """Two thieves racing the same split point must resolve to one
        cut marker and one tail lease (first-writer-wins, exclusive
        create) — and the campaign must still complete byte-identically."""
        spec = demo_spec(runs=2, campaign_id="dist-steal-race")
        serial = CampaignRunner().run_campaign(spec)
        queue_dir = tmp_path / "queue"
        runner = DistributedCampaignRunner(queue_dir, batch_size=16, wait_timeout=30)
        campaign_id = runner.submit_campaign(spec)
        queue = WorkQueue(queue_dir)
        num = int(queue.manifest(campaign_id)["num_tasks"])

        # A live victim lease with published progress, as thieves see it.
        victim_lease = queue.try_acquire(campaign_id, 0, "victim", ttl=30)
        assert victim_lease is not None
        queue.heartbeat(victim_lease, progress=2)

        cut_at = num // 2
        barrier = threading.Barrier(2)
        outcomes = {}

        def thief(name):
            barrier.wait()
            won_cut = queue.add_cut(campaign_id, 0, cut_at, name)
            lease = queue.try_acquire(campaign_id, 0, name, ttl=30, start=cut_at)
            outcomes[name] = (won_cut, lease)

        threads = [threading.Thread(target=thief, args=(f"t{i}",)) for i in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert sum(1 for won, _ in outcomes.values() if won) == 1
        winners = [lease for _, lease in outcomes.values() if lease is not None]
        assert len(winners) == 1, "both thieves claimed the stolen tail"
        assert queue.cuts(campaign_id) == {0: [cut_at]}

        # Release everything and let one worker drain the campaign.
        queue.release(victim_lease)
        queue.release(winners[0])
        worker = Worker(queue, worker_id="drainer", ttl=30)
        while worker.run_once():
            pass
        worker.close()
        result = runner.run_campaign(spec)
        assert [record.as_dict() for record in serial.records] == [
            record.as_dict() for record in result.records
        ]

    @pytest.mark.slow
    def test_steal_under_crash_requeues_the_stolen_tail(self, tmp_path):
        """A thief SIGKILLed after planting its cut marker (before
        depositing) must not lose the stolen interval: its lease expires
        and any worker re-claims the tail, completing the campaign with
        records identical to an uninterrupted run."""
        spec = slow_spec(runs=8, delay=0.15, campaign_id="dist-steal-crash")
        expected = CampaignRunner().run_campaign(spec)

        queue_dir = tmp_path / "queue"
        runner = DistributedCampaignRunner(queue_dir, batch_size=8, wait_timeout=WAIT)
        campaign_id = runner.submit_campaign(spec)
        queue = WorkQueue(queue_dir)

        victim = mp.Process(
            target=run_worker,
            kwargs=dict(
                queue_dir=str(queue_dir), worker_id="victim", ttl=2.0,
                poll_interval=0.05, max_idle=20.0,
            ),
            daemon=True,
        )
        victim.start()
        wait_until(
            lambda: queue.leases(campaign_id), message="victim to claim the batch"
        )
        thief = mp.Process(
            target=run_worker,
            kwargs=dict(
                queue_dir=str(queue_dir), worker_id="thief", ttl=2.0,
                poll_interval=0.05, max_idle=20.0,
            ),
            daemon=True,
        )
        thief.start()
        # Kill the thief the moment its cut marker lands: it has claimed
        # the tail but cannot have deposited it yet (runs take ~rounds ×
        # delay seconds).
        wait_until(lambda: queue.cuts(campaign_id), message="the thief's cut marker")
        thief.kill()
        thief.join(timeout=10)
        cut_at = queue.cuts(campaign_id)[0][0]
        assert not queue.batch_done(campaign_id, 0)

        # The victim (now the only live worker) finishes its head, then
        # recovers the orphaned tail — by re-stealing from the dead
        # thief's still-live lease and/or re-claiming it after the TTL.
        runner.wait(campaign_id)
        reap([victim])
        parts = queue.parts(campaign_id)[0]
        assert len(parts) >= 2, f"expected split deposits, got {parts}"
        assert queue.batch_done(campaign_id, 0)
        covered = sorted(position for start, count in parts for position in range(start, start + count))
        assert covered == list(range(8)), f"coverage gap: {parts} (cut at {cut_at})"

        recovered = runner.run_campaign(spec)
        assert [record.as_dict() for record in expected.records] == [
            record.as_dict() for record in recovered.records
        ]

    def test_no_steal_worker_never_cuts(self, tmp_path):
        """--no-steal workers must leave peers' leases alone."""
        spec = demo_spec(runs=2, campaign_id="dist-no-steal")
        queue_dir = tmp_path / "queue"
        runner = DistributedCampaignRunner(queue_dir, batch_size=16, wait_timeout=30)
        campaign_id = runner.submit_campaign(spec)
        queue = WorkQueue(queue_dir)
        victim_lease = queue.try_acquire(campaign_id, 0, "victim", ttl=30)
        queue.heartbeat(victim_lease, progress=1)

        pacifist = Worker(queue, worker_id="pacifist", ttl=30, steal=False)
        assert pacifist.run_once() == 0  # the batch is leased
        assert pacifist.steal_once() == 0 or not queue.cuts(campaign_id)
        pacifist.close()
        assert not queue.cuts(campaign_id)
        assert pacifist.steals == 0


class TestRetireProtocol:
    """The supervisor → worker shutdown handshake."""

    def test_worker_exits_on_retire_marker_and_acknowledges(self, tmp_path):
        queue = WorkQueue(tmp_path)
        queue.request_retire("w1")
        worker = Worker(queue, worker_id="w1", ttl=30, poll_interval=0.05)
        started = time.monotonic()
        executed = worker.run(max_idle=60.0)  # returns long before max_idle
        worker.close()
        assert executed == 0
        assert time.monotonic() - started < 10.0
        assert not queue.retire_requested("w1"), "marker was not acknowledged"

    def test_retire_leaves_pending_work_for_peers(self, tmp_path):
        spec = demo_spec(runs=1, campaign_id="dist-retire-pending")
        runner = DistributedCampaignRunner(tmp_path / "q", batch_size=4, wait_timeout=5)
        campaign_id = runner.submit_campaign(spec)
        queue = WorkQueue(tmp_path / "q")
        queue.request_retire("w2")
        worker = Worker(queue, worker_id="w2", ttl=30, poll_interval=0.05)
        worker.run(max_idle=60.0)
        worker.close()
        assert queue.pending(campaign_id), "retiring worker should not have claimed work"

    def test_weird_worker_ids_cannot_escape_the_store(self, tmp_path):
        queue = WorkQueue(tmp_path)
        queue.request_retire("../../evil")
        assert queue.retire_requested("../../evil")
        assert not (tmp_path.parent / "evil.json").exists()
        assert queue.clear_retire("../../evil")


class _FakeProcess:
    """A Popen stand-in for supervisor decision tests."""

    def __init__(self):
        self.exit_code = None
        self.terminated = False

    def poll(self):
        return self.exit_code

    def wait(self, timeout=None):
        if self.exit_code is None:
            import subprocess

            raise subprocess.TimeoutExpired("fake-worker", timeout)
        return self.exit_code

    def terminate(self):
        self.terminated = True
        self.exit_code = -15

    def kill(self):
        self.exit_code = -9


class TestSupervisor:
    def test_bounds_and_backend_validation(self, tmp_path):
        with pytest.raises(ValueError, match="min_workers"):
            Supervisor(tmp_path, min_workers=-1)
        with pytest.raises(ValueError, match="max_workers"):
            Supervisor(tmp_path, min_workers=3, max_workers=2)
        with pytest.raises(ValueError, match="not result-identical"):
            Supervisor(tmp_path, backend="async")

    def test_scales_up_to_queue_depth_and_down_on_drain(self, tmp_path):
        """Decision logic with a fake spawner: unclaimed intervals drive
        scale-up (clamped to max_workers); a drained queue drives retire
        markers for the idle workers."""
        from repro.runner.records import RunnerStats, RunRecord

        queue = WorkQueue(tmp_path / "q")
        tasks = [task_from_spec(spec) for spec in demo_spec(runs=2).expand()]
        campaign_id = queue.submit(tasks, batch_size=3)  # 8 tasks -> 3 batches
        spawned = []

        def fake_spawn(worker_id):
            process = _FakeProcess()
            spawned.append((worker_id, process))
            return process

        supervisor = Supervisor(
            queue, min_workers=0, max_workers=2, idle_grace=0.0, spawn=fake_spawn
        )
        status = supervisor.poll_once()
        assert status["unclaimed_units"] == 3
        assert status["target"] == 2 and len(supervisor.workers) == 2
        assert supervisor.stats.spawned == 2

        # Depth unchanged (fake workers do nothing): no further spawns.
        supervisor.poll_once()
        assert supervisor.stats.spawned == 2

        # Drain the queue by depositing every batch, then poll: both
        # idle workers get retire markers (never SIGKILL).
        manifest = queue.manifest(campaign_id)
        for index, num in enumerate(queue.batch_sizes(manifest)):
            queue.write_result(
                campaign_id, index, 0,
                [RunRecord(agreement=True) for _ in range(num)],
                "fake", RunnerStats(),
            )
        status = supervisor.poll_once()
        assert status["drained"] and status["target"] == 0
        assert supervisor.stats.retired == 2
        for worker_id, _ in spawned:
            assert queue.retire_requested(worker_id)

        # The fake processes exit (as a retiring worker would); a reap
        # poll forgets them and clears the markers.
        for _, process in spawned:
            process.exit_code = 0
        supervisor.poll_once()
        assert supervisor.workers == []
        for worker_id, _ in spawned:
            assert not queue.retire_requested(worker_id)
        supervisor.shutdown()

    def test_busy_workers_are_not_retired_below_demand(self, tmp_path):
        """A worker holding a live lease counts as demand: scale-down
        prefers idle workers and keeps the busy one."""
        queue = WorkQueue(tmp_path / "q")
        tasks = [task_from_spec(spec) for spec in demo_spec(runs=2).expand()]
        campaign_id = queue.submit(tasks, batch_size=8)  # 8 tasks -> 1 batch
        spawned = []

        def fake_spawn(worker_id):
            process = _FakeProcess()
            spawned.append((worker_id, process))
            return process

        supervisor = Supervisor(
            queue, min_workers=0, max_workers=2, idle_grace=60.0, spawn=fake_spawn
        )
        supervisor.poll_once()  # one unclaimed unit -> one worker
        assert len(supervisor.workers) == 1
        busy_id = supervisor.workers[0].worker_id
        # The spawned worker "claims" the batch: demand stays 1 (busy),
        # unclaimed drops to 0, so no churn in either direction.
        assert queue.try_acquire(campaign_id, 0, busy_id, ttl=30) is not None
        status = supervisor.poll_once()
        assert status["busy"] == 1 and status["target"] == 1
        assert supervisor.stats.retired == 0
        supervisor.shutdown()

    def test_default_spawner_rejects_custom_store_queues(self, tmp_path):
        """The default spawner launches `repro-ho worker --queue-dir`
        subprocesses, which only speak filesystem queue dirs — pairing it
        with an object-store queue would spawn a fleet polling the wrong
        place forever, so it must be rejected up front."""
        queue = WorkQueue(tmp_path, store=ObjectStore(InMemoryObjectClient()))
        with pytest.raises(ValueError, match="spawn"):
            Supervisor(queue)
        # An injected spawner takes responsibility and is accepted.
        Supervisor(queue, spawn=lambda worker_id: _FakeProcess())

    def test_exit_on_drain_retires_below_min_workers(self, tmp_path):
        """--exit-on-drain must terminate even with min_workers > 0: the
        drain floor drops to zero so the fleet can be fully retired."""
        queue = WorkQueue(tmp_path / "q")

        class _RetiringFake(_FakeProcess):
            def __init__(self, worker_id):
                super().__init__()
                self.worker_id = worker_id

            def poll(self):
                # A real worker observes its marker, acks and exits; the
                # fake just exits (the supervisor clears the marker at reap).
                if self.exit_code is None and queue.retire_requested(self.worker_id):
                    self.exit_code = 0
                return self.exit_code

        supervisor = Supervisor(
            queue, min_workers=1, max_workers=2, idle_grace=0.3,
            poll_interval=0.02, spawn=_RetiringFake,
        )
        stats = supervisor.run(exit_when_drained=True, max_runtime=30)
        assert stats.spawned >= 1, "min_workers floor never spawned"
        assert stats.retired >= 1
        assert supervisor.workers == [], "fleet not fully retired at drain"

    @pytest.mark.slow
    def test_supervisor_drains_a_campaign_end_to_end(self, tmp_path):
        """Real subprocess workers: autoscale 0 → N on a queued campaign,
        drain it, scale back to 0, with records identical to serial."""
        spec = demo_spec(runs=2, campaign_id="dist-supervised")
        serial = CampaignRunner().run_campaign(spec)

        queue_dir = tmp_path / "queue"
        runner = DistributedCampaignRunner(queue_dir, batch_size=3, wait_timeout=WAIT)
        campaign_id = runner.submit_campaign(spec)
        supervisor = Supervisor(
            queue_dir,
            min_workers=0,
            max_workers=2,
            ttl=10.0,
            poll_interval=0.2,
            worker_poll_interval=0.05,
            idle_grace=0.5,
        )
        stats = supervisor.run(exit_when_drained=True, max_runtime=WAIT)
        assert stats.spawned >= 1
        assert stats.peak_workers <= 2
        assert supervisor.workers == [], "fleet not fully retired"
        assert runner.queue.complete(campaign_id)

        result = runner.run_campaign(spec)  # pure cache/collect, no fleet
        assert [record.as_dict() for record in serial.records] == [
            record.as_dict() for record in result.records
        ]


class TestObjectStoreFleet:
    """The queue protocol must run unchanged over an object store."""

    def test_fleet_protocol_over_object_store(self, tmp_path):
        client = InMemoryObjectClient()
        queue = WorkQueue(tmp_path / "never-created", store=ObjectStore(client))
        spec = demo_spec(runs=2, campaign_id="dist-object")
        serial = CampaignRunner().run_campaign(spec)

        runner = DistributedCampaignRunner(queue, batch_size=3, wait_timeout=30)
        campaign_id = runner.submit_campaign(spec)
        worker = Worker(queue, worker_id="obj-worker", ttl=30)
        while worker.run_once():
            pass
        worker.close()
        assert queue.complete(campaign_id)

        result = runner.run_campaign(spec)
        assert [record.as_dict() for record in serial.records] == [
            record.as_dict() for record in result.records
        ]
        # Everything — batches, leases, deposits, the shared cache —
        # lived in the object client, not on disk.
        assert len(client) > 0
        assert not (tmp_path / "never-created").exists()

    def test_steal_protocol_over_object_store(self, tmp_path):
        """Cut markers and part deposits are plain store entries, so
        stealing works over the object client too."""
        client = InMemoryObjectClient()
        queue = WorkQueue(tmp_path / "unused", store=ObjectStore(client))
        spec = demo_spec(runs=2, campaign_id="dist-object-steal")
        serial = CampaignRunner().run_campaign(spec)
        runner = DistributedCampaignRunner(queue, batch_size=16, wait_timeout=30)
        campaign_id = runner.submit_campaign(spec)
        num = int(queue.manifest(campaign_id)["num_tasks"])

        victim_lease = queue.try_acquire(campaign_id, 0, "victim", ttl=30)
        queue.heartbeat(victim_lease, progress=2)
        thief = Worker(queue, worker_id="thief", ttl=30)
        assert thief.steal_once() == 1
        thief.close()
        assert queue.cuts(campaign_id)[0], "no cut marker in the object store"
        cut_at = queue.cuts(campaign_id)[0][0]
        assert (cut_at, num - cut_at) in queue.parts(campaign_id)[0]

        # The victim's share still pends; drain it and compare.
        queue.release(victim_lease)
        drainer = Worker(queue, worker_id="drainer", ttl=30)
        while drainer.run_once():
            pass
        drainer.close()
        result = runner.run_campaign(spec)
        assert [record.as_dict() for record in serial.records] == [
            record.as_dict() for record in result.records
        ]


def _monotone_totals(totals):
    """The additive subset of fleet totals: counters and histogram
    count/sum samples (gauges may legitimately move both ways)."""
    return {
        key: value
        for key, value in totals.items()
        if "_total" in key or key.endswith("_count") or key.endswith("_sum")
    }


class TestChaosTier:
    """Seeded kill schedules: the fleet (and its observability) under fire.

    Four subprocess workers execute a latency-bound campaign while a
    deterministic schedule (``random.Random(seed)``) SIGKILLs a random
    live worker at a random poll boundary and respawns a replacement
    under a fresh id.  The rescued report must be byte-identical to an
    uninterrupted serial run, and every additive fleet counter sampled
    through :func:`fleet_status` must be monotone across the whole
    storm — stale-but-never-torn snapshot files are the claim under test.
    """

    @pytest.mark.chaos
    @pytest.mark.slow
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_kill_schedule_rescues_byte_identical_report(self, tmp_path, seed):
        spec = slow_spec(runs=6, delay=0.05, campaign_id=f"dist-chaos-{seed}")
        expected = CampaignRunner().run_campaign(spec)

        queue_dir = tmp_path / "queue"
        runner = DistributedCampaignRunner(queue_dir, batch_size=2, wait_timeout=WAIT)
        campaign_id = runner.submit_campaign(spec)
        assert campaign_id is not None
        queue = WorkQueue(queue_dir)

        rng = random.Random(seed)
        workers = {}
        spawned = 0

        def spawn_one():
            nonlocal spawned
            worker_id = f"chaos{seed}-w{spawned}"
            spawned += 1
            process = mp.Process(
                target=run_worker,
                kwargs=dict(
                    queue_dir=str(queue_dir),
                    worker_id=worker_id,
                    ttl=1.5,
                    poll_interval=0.05,
                    max_idle=20.0,
                ),
                daemon=True,
            )
            process.start()
            workers[worker_id] = process

        for _ in range(4):
            spawn_one()

        kills = 0
        last_monotone = {}
        samples = 0
        deadline = time.monotonic() + WAIT
        try:
            while not queue.complete(campaign_id):
                assert time.monotonic() < deadline, "chaos campaign never completed"
                time.sleep(rng.uniform(0.1, 0.5))  # a seeded poll boundary

                # Observability under fire: merged additive counters
                # never regress, whatever is being killed mid-write.
                totals = _monotone_totals(fleet_status(queue)["totals"])
                for key, floor in last_monotone.items():
                    assert totals.get(key, 0.0) >= floor, f"{key} regressed"
                last_monotone = totals
                samples += 1

                if kills < 6:
                    alive = sorted(
                        worker_id
                        for worker_id, process in workers.items()
                        if process.is_alive()
                    )
                    if alive:
                        victim_id = rng.choice(alive)
                        victim = workers[victim_id]
                        os.kill(victim.pid, signal.SIGKILL)
                        victim.join(timeout=10)
                        kills += 1
                        spawn_one()  # a fresh id, never a reused one
        finally:
            reap(list(workers.values()))

        assert kills >= 1, "the schedule never killed anyone"
        assert samples >= 1

        rescued = runner.run_campaign(spec)  # collects; all work deposited
        assert json.dumps([r.as_dict() for r in expected.records]) == json.dumps(
            [r.as_dict() for r in rescued.records]
        )

        # A final status sample still parses as strict JSON and its
        # counters sit at-or-above every mid-storm floor.
        final = fleet_status(queue)
        json.dumps(final, allow_nan=False)
        final_monotone = _monotone_totals(final["totals"])
        for key, floor in last_monotone.items():
            assert final_monotone.get(key, 0.0) >= floor

"""Every ``repro`` import shown in docs code blocks must resolve.

Docs rot silently when a re-export is dropped: the page still renders,
the snippet just stops working for readers.  This test parses every
fenced ``python`` code block in the docs site and README with ``ast``,
collects the ``repro``-rooted imports, and asserts each imported module
exists and exposes each imported name — so curating ``__all__`` (or
moving a symbol) breaks CI, not users.
"""

import ast
import importlib
import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
DOC_SOURCES = sorted(REPO_ROOT.glob("docs/**/*.md")) + [REPO_ROOT / "README.md"]

FENCE = re.compile(r"```python\n(.*?)```", re.DOTALL)


def python_blocks(path):
    return [match.group(1) for match in FENCE.finditer(path.read_text())]


def repro_imports(source):
    """``(module, name)`` pairs for repro-rooted imports in ``source``.

    ``name`` is None for plain ``import repro.x`` statements.  Blocks
    that are deliberately not pure Python (e.g. shell transcripts) fail
    to parse and are skipped — this gate is about imports, not prose.
    """
    try:
        tree = ast.parse(source)
    except SyntaxError:
        return []
    pairs = []
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module:
            if node.module == "repro" or node.module.startswith("repro."):
                pairs.extend((node.module, alias.name) for alias in node.names)
        elif isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "repro" or alias.name.startswith("repro."):
                    pairs.append((alias.name, None))
    return pairs


def collect_cases():
    cases = []
    for path in DOC_SOURCES:
        if not path.exists():
            continue
        for block in python_blocks(path):
            for module, name in repro_imports(block):
                cases.append(pytest.param(
                    module, name,
                    id=f"{path.relative_to(REPO_ROOT)}:{module}.{name or '*'}",
                ))
    return cases


CASES = collect_cases()


def test_docs_actually_contain_repro_imports():
    """Guard the guard: an empty case list means the scraper broke."""
    assert len(CASES) >= 5


@pytest.mark.parametrize("module,name", CASES)
def test_documented_import_resolves(module, name):
    imported = importlib.import_module(module)
    if name is not None and name != "*":
        assert hasattr(imported, name), (
            f"docs import 'from {module} import {name}' no longer resolves"
        )


class TestCuratedAll:
    """The package-level ``__all__`` lists must stay importable."""

    @pytest.mark.parametrize("module_name", ["repro", "repro.simulation"])
    def test_all_names_exist(self, module_name):
        module = importlib.import_module(module_name)
        missing = [n for n in module.__all__ if not hasattr(module, n)]
        assert missing == []

    def test_batch_first_api_is_exported(self):
        import repro

        for name in (
            "CampaignRunner", "CampaignSpec", "EngineBackend",
            "SimulationRequest", "register_backend", "register_kernel",
            "register_planner", "run_simulations_batched",
        ):
            assert name in repro.__all__

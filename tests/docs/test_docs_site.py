"""Docs-site gates: strict offline build, dead links, CLI reference sync.

The docs archetype's acceptance criteria live here: the site must build
warning-free with the dependency-free builder, the README's deep-dive
relocations must leave no dead links behind, and the generated CLI
reference must match the argparse definitions exactly.
"""

import importlib.util
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
DOCS_DIR = REPO_ROOT / "docs"


def _load_builder():
    spec = importlib.util.spec_from_file_location("docs_build", DOCS_DIR / "build.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestDocsSite:
    def test_site_builds_warning_free(self, tmp_path):
        """The CI gate, in-process: zero warnings (dead links, nav gaps,
        stale CLI reference) and one rendered page per nav entry."""
        builder = _load_builder()
        warnings = builder.collect_warnings()
        assert warnings == []
        nav = builder.parse_nav()
        assert len(nav) >= 6, f"nav unexpectedly small: {nav}"
        builder.build_site(tmp_path, nav)
        for _, relpath in nav:
            rendered = tmp_path / relpath.replace(".md", ".html")
            assert rendered.exists(), f"no rendered page for {relpath}"
            assert "<main>" in rendered.read_text(encoding="utf-8")

    def test_every_nav_page_has_headings_and_content(self):
        builder = _load_builder()
        for _, relpath in builder.parse_nav():
            text = (DOCS_DIR / relpath).read_text(encoding="utf-8")
            assert builder.page_headings(text), f"{relpath} has no headings"
            assert len(text) > 500, f"{relpath} looks like a stub"

    def test_cli_reference_is_in_sync_with_help_output(self):
        """docs/reference/cli.md is generated; drift from the argparse
        definitions (a new flag, a reworded help string) must fail."""
        from repro.cli import cli_reference_markdown

        committed = (DOCS_DIR / "reference" / "cli.md").read_text(encoding="utf-8")
        assert committed == cli_reference_markdown(), (
            "docs/reference/cli.md is stale; regenerate with "
            "'PYTHONPATH=src python docs/build.py --write-cli-reference'"
        )

    def test_cli_reference_covers_every_subcommand(self):
        text = (DOCS_DIR / "reference" / "cli.md").read_text(encoding="utf-8")
        for command in (
            "run",
            "experiment",
            "campaign",
            "worker",
            "supervise",
            "status",
            "table",
            "lint",
        ):
            assert f"## `repro-ho {command}`" in text

    def test_cli_lint_help_documents_exit_codes_and_baseline_flow(self):
        """`repro-ho lint --help` (and therefore the generated reference)
        must document the exit-code contract and the --baseline-update
        flow — they are the CI integration surface."""
        text = (DOCS_DIR / "reference" / "cli.md").read_text(encoding="utf-8")
        lint_section = text.partition("## `repro-ho lint`")[2]
        assert "exit codes:" in lint_section
        assert "--baseline-update" in lint_section
        assert "--format" in lint_section

    def test_rule_catalogue_is_in_sync_with_rule_docstrings(self):
        """The docs rule catalogue is generated from rule docstrings;
        registering or rewording a rule must regenerate it."""
        from repro.devtools.lint import available_rules, rule_catalogue_markdown

        page = (DOCS_DIR / "static-analysis.md").read_text(encoding="utf-8")
        catalogue = rule_catalogue_markdown()
        begin = page.index("<!-- RULE-CATALOGUE:BEGIN -->")
        end = page.index("<!-- RULE-CATALOGUE:END -->")
        region = page[begin:end]
        assert catalogue.rstrip() in region, (
            "docs/static-analysis.md rule catalogue is stale; regenerate with "
            "'PYTHONPATH=src python docs/build.py --write-rule-catalogue'"
        )
        for rule_id in available_rules():
            assert f"### `{rule_id}`" in region

    def test_metric_catalogue_is_in_sync_with_fleet_specs(self):
        """The docs metric catalogue is generated from FLEET_METRICS;
        adding or rewording a metric must regenerate it."""
        from repro.runner.metrics import FLEET_METRICS, metric_catalogue_markdown

        page = (DOCS_DIR / "observability.md").read_text(encoding="utf-8")
        catalogue = metric_catalogue_markdown()
        begin = page.index("<!-- METRIC-CATALOGUE:BEGIN -->")
        end = page.index("<!-- METRIC-CATALOGUE:END -->")
        region = page[begin:end]
        assert catalogue.rstrip() in region, (
            "docs/observability.md metric catalogue is stale; regenerate with "
            "'PYTHONPATH=src python docs/build.py --write-metric-catalogue'"
        )
        for spec in FLEET_METRICS:
            assert f"`{spec.name}`" in region


class TestReadmeRelocation:
    """The README keeps a quickstart and links; the deep dives moved."""

    def test_readme_links_to_every_docs_page(self):
        readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
        builder = _load_builder()
        for _, relpath in builder.parse_nav():
            assert f"docs/{relpath}" in readme, f"README does not link docs/{relpath}"

    def test_readme_no_longer_carries_the_deep_dives(self):
        readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
        for heading in (
            "## The campaign runner",
            "## In-worker reduction",
            "## Engine backends",
            "## Distributed campaigns",
            "**Lease semantics.**",
        ):
            assert heading not in readme, f"deep dive {heading!r} still in README"

    def test_deep_dives_landed_in_docs(self):
        """The relocated sections (plus the new elastic-fleet material)
        exist in their target pages."""
        expectations = {
            "campaign-runner.md": ["## In-worker reduction", "CampaignSpec"],
            "engine-backends.md": ["Semantic invisibility", "equivalent_to_reference"],
            "cache-keys.md": [
                "## Why backends never enter cache keys",
                "CACHE_SCHEMA_VERSION",
                "QUEUE_SCHEMA_VERSION",
            ],
            "distributed-queue.md": [
                "## Lease semantics",
                "## Work stealing: cut markers and part deposits",
                "## The auto-scaling supervisor",
                "## The worker shutdown protocol",
                "splits/00000.0000.json",
            ],
            "architecture.md": ["Heard-Of core", "distributed fleet"],
        }
        for relpath, needles in expectations.items():
            text = (DOCS_DIR / relpath).read_text(encoding="utf-8")
            for needle in needles:
                assert needle in text, f"{relpath} is missing {needle!r}"

"""Docstring gates for the public seams (no ruff required locally).

CI's lint job runs ruff with a pydocstyle subset (D100 module / D101
class / D103 top-level function) scoped to ``src/repro/runner/`` and
``src/repro/simulation/`` — the packages whose modules are the seams
other layers plug into.  This test enforces the identical subset with
``ast`` alone, so the gate also holds in environments without ruff
(like the tier-1 matrix) and the two can never silently diverge.
"""

import ast
from pathlib import Path

import pytest

SRC = Path(__file__).resolve().parents[1] / "src" / "repro"
ENFORCED_PACKAGES = ("runner", "simulation")

#: The seams the docs and this PR's issue call out explicitly — they
#: must exist and stay documented even if the package layout shifts.
PUBLIC_SEAMS = (
    SRC / "simulation" / "backends.py",
    SRC / "adversary" / "plan.py",
    SRC / "runner" / "store.py",
    SRC / "runner" / "distributed.py",
    SRC / "runner" / "reduce.py",
)


def _enforced_modules():
    for package in ENFORCED_PACKAGES:
        for path in sorted((SRC / package).glob("*.py")):
            yield path


def _missing_docstrings(path: Path):
    tree = ast.parse(path.read_text(encoding="utf-8"))
    missing = []
    if ast.get_docstring(tree) is None:  # D100
        missing.append("module")
    for node in tree.body:
        public = hasattr(node, "name") and not node.name.startswith("_")
        if isinstance(node, ast.ClassDef) and public:  # D101
            if ast.get_docstring(node) is None:
                missing.append(f"class {node.name}")
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and public:  # D103
            if ast.get_docstring(node) is None:
                missing.append(f"def {node.name}")
    return missing


@pytest.mark.parametrize(
    "path", list(_enforced_modules()), ids=lambda p: f"{p.parent.name}/{p.name}"
)
def test_public_seams_have_docstrings(path):
    missing = _missing_docstrings(path)
    assert not missing, (
        f"{path.relative_to(SRC.parent.parent)} is missing docstrings for: "
        f"{', '.join(missing)} (rule subset D100/D101/D103; see pyproject.toml)"
    )


def test_named_seam_modules_exist_and_lead_with_prose():
    """The five seams the documentation names must carry real module
    docstrings (multi-line prose, not placeholders)."""
    for path in PUBLIC_SEAMS:
        assert path.exists(), f"seam module moved: {path}"
        docstring = ast.get_docstring(ast.parse(path.read_text(encoding="utf-8")))
        assert docstring and len(docstring.splitlines()) >= 3, (
            f"{path.name} needs a substantive module docstring"
        )

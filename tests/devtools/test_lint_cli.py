"""CLI tests: the exit-code contract, JSON output, the baseline-update
flow, the `repro-ho lint` integration and the self-clean gate."""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

import repro.cli as repro_cli
from repro.devtools.lint.baseline import DEFAULT_BASELINE_NAME
from repro.devtools.lint.cli import EXIT_CLEAN, EXIT_FINDINGS, EXIT_USAGE, main

REPO_ROOT = Path(__file__).resolve().parents[2]

_FAMILY_VIOLATIONS = {
    "D": """
        import random

        def draw():
            return random.random()
        """,
    "A": """
        def publish(path, payload):
            with open(path, "w") as handle:
                handle.write(payload)
        """,
    "S": """
        import json

        def encode(payload):
            return json.dumps(payload)
        """,
    "R": """
        from repro.simulation.backends import register_backend

        @register_backend
        class SneakyBackend:
            name = "sneaky"
        """,
}


def _write_fixture(tmp_path, source, relpath="repro/runner/module_under_test.py"):
    target = tmp_path / relpath
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(textwrap.dedent(source), encoding="utf-8")
    return target


class TestExitCodes:
    def test_clean_fixture_exits_zero(self, tmp_path, capsys):
        target = _write_fixture(tmp_path, "x = 1\n")
        assert main([str(target), "--no-baseline"]) == EXIT_CLEAN
        assert "0 findings" in capsys.readouterr().out

    @pytest.mark.parametrize("family", sorted(_FAMILY_VIOLATIONS))
    def test_each_rule_family_violation_exits_nonzero(self, family, tmp_path, capsys):
        relpath = (
            "repro/simulation/custom.py"
            if family == "R"
            else "repro/runner/module_under_test.py"
        )
        target = _write_fixture(tmp_path, _FAMILY_VIOLATIONS[family], relpath)
        assert main([str(target), "--no-baseline"]) == EXIT_FINDINGS
        out = capsys.readouterr().out
        assert f" {family}" in out  # a finding line carries the family's rule id

    def test_unknown_rule_id_exits_two_with_did_you_mean(self, tmp_path, capsys):
        target = _write_fixture(tmp_path, "x = 1\n")
        assert main([str(target), "--rules", "D200", "--no-baseline"]) == EXIT_USAGE
        assert "did you mean" in capsys.readouterr().err

    def test_missing_path_exits_two(self, tmp_path, capsys):
        assert main([str(tmp_path / "nope.py")]) == EXIT_USAGE
        assert "no such path" in capsys.readouterr().err

    def test_invalid_baseline_exits_two(self, tmp_path, capsys):
        target = _write_fixture(tmp_path, "x = 1\n")
        baseline = tmp_path / "bad.json"
        baseline.write_text("[not json", encoding="utf-8")
        assert main([str(target), "--baseline", str(baseline)]) == EXIT_USAGE
        assert "repro-lint:" in capsys.readouterr().err


class TestOutputModes:
    def test_json_format_emits_findings_and_summary(self, tmp_path, capsys):
        target = _write_fixture(tmp_path, _FAMILY_VIOLATIONS["S"])
        code = main([str(target), "--format", "json", "--no-baseline"])
        assert code == EXIT_FINDINGS
        payload = json.loads(capsys.readouterr().out)
        assert set(payload) == {
            "findings",
            "suppressed",
            "baselined",
            "stale_baseline",
            "summary",
        }
        assert payload["summary"]["checked_files"] == 1
        assert payload["summary"]["findings"] == 1
        (finding,) = payload["findings"]
        assert finding["rule"] == "S401"
        assert finding["line"] > 0

    def test_list_rules_prints_every_rule(self, capsys):
        assert main(["--list-rules"]) == EXIT_CLEAN
        out = capsys.readouterr().out
        for rule_id in ("D201", "D202", "D203", "A301", "S401", "S402", "R501", "R502"):
            assert rule_id in out

    def test_text_format_reports_stale_baseline(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        target = _write_fixture(tmp_path, _FAMILY_VIOLATIONS["S"])
        assert main([str(target), "--baseline-update"]) == EXIT_CLEAN
        capsys.readouterr()
        target.write_text("x = 1\n", encoding="utf-8")
        baseline = tmp_path / DEFAULT_BASELINE_NAME
        payload = json.loads(baseline.read_text(encoding="utf-8"))
        payload["findings"][0]["justification"] = "accepted for the stale-entry test"
        baseline.write_text(json.dumps(payload), encoding="utf-8")
        assert main([str(target)]) == EXIT_FINDINGS
        assert "stale baseline entry" in capsys.readouterr().out


class TestBaselineUpdateFlow:
    def test_update_then_justify_then_clean(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        target = _write_fixture(tmp_path, _FAMILY_VIOLATIONS["S"])

        assert main([str(target)]) == EXIT_FINDINGS
        capsys.readouterr()

        assert main([str(target), "--baseline-update"]) == EXIT_CLEAN
        assert "rewritten with 1 entries" in capsys.readouterr().out
        baseline = tmp_path / DEFAULT_BASELINE_NAME

        # The placeholder justification must not pass a normal run.
        assert main([str(target)]) == EXIT_USAGE
        assert "justification" in capsys.readouterr().err

        payload = json.loads(baseline.read_text(encoding="utf-8"))
        payload["findings"][0]["justification"] = "legacy encoder, tracked in ISSUE 7"
        baseline.write_text(json.dumps(payload), encoding="utf-8")
        assert main([str(target)]) == EXIT_CLEAN
        assert "(1 baselined" in capsys.readouterr().out


class TestReproHoIntegration:
    def test_repro_ho_lint_matches_standalone(self, tmp_path, capsys):
        target = _write_fixture(tmp_path, _FAMILY_VIOLATIONS["D"])
        code = repro_cli.main(["lint", str(target), "--no-baseline"])
        assert code == EXIT_FINDINGS
        assert "D201" in capsys.readouterr().out

    def test_repro_ho_lint_help_carries_exit_code_contract(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            repro_cli.main(["lint", "--help"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        assert "exit codes:" in out
        assert "--baseline-update" in out


class TestSelfCleanGate:
    def test_shipped_tree_is_clean_under_its_own_linter(self, capsys, monkeypatch):
        """The gate from ISSUE 7: `repro-lint src/repro` exits 0 with the
        checked-in baseline, so CI can run it verbatim."""
        monkeypatch.chdir(REPO_ROOT)
        assert main(["src/repro"]) == EXIT_CLEAN
        out = capsys.readouterr().out
        assert "0 findings" in out
        assert "0 stale baseline entries" in out

"""Fixture tests for the R family: R501 backend equivalence declared,
R502 exact registration targets."""

from __future__ import annotations


def _ids(report):
    return [item.rule for item in report.findings]


class TestBackendEquivalenceR501:
    def test_decorated_backend_without_declaration_is_flagged(self, lint_snippet):
        report = lint_snippet(
            """
            from repro.simulation.backends import register_backend

            @register_backend
            class SneakyBackend:
                name = "sneaky"
                fallback = None
            """,
            relpath="repro/simulation/custom.py",
            rules=["R501"],
        )
        assert _ids(report) == ["R501"]
        assert "SneakyBackend" in report.findings[0].message

    def test_decorator_with_arguments_is_also_checked(self, lint_snippet):
        report = lint_snippet(
            """
            from repro.simulation.backends import register_backend

            @register_backend(overwrite=True)
            class SneakyBackend:
                name = "sneaky"
            """,
            relpath="repro/simulation/custom.py",
            rules=["R501"],
        )
        assert _ids(report) == ["R501"]

    def test_declared_backend_is_allowed(self, lint_snippet):
        report = lint_snippet(
            """
            from repro.simulation.backends import register_backend

            @register_backend
            class HonestBackend:
                name = "honest"
                fallback = None
                equivalent_to_reference = True
            """,
            relpath="repro/simulation/custom.py",
            rules=["R501"],
        )
        assert report.findings == []

    def test_direct_call_with_local_class_is_resolved(self, lint_snippet):
        report = lint_snippet(
            """
            from repro.simulation.backends import register_backend

            class SneakyBackend:
                name = "sneaky"

            register_backend(SneakyBackend())
            """,
            relpath="repro/simulation/custom.py",
            rules=["R501"],
        )
        assert _ids(report) == ["R501"]

    def test_annotated_declaration_counts(self, lint_snippet):
        report = lint_snippet(
            """
            from repro.simulation.backends import register_backend

            class HonestBackend:
                name = "honest"
                equivalent_to_reference: bool = False

            register_backend(HonestBackend())
            """,
            relpath="repro/simulation/custom.py",
            rules=["R501"],
        )
        assert report.findings == []

    def test_unresolvable_target_is_flagged(self, lint_snippet):
        report = lint_snippet(
            """
            from repro.simulation.backends import register_backend

            def factory():
                pass

            register_backend(factory()())
            """,
            relpath="repro/simulation/custom.py",
            rules=["R501"],
        )
        assert _ids(report) == ["R501"]
        assert "statically" in report.findings[0].message


class TestExactRegistrationTargetR502:
    def test_class_name_target_is_allowed(self, lint_snippet):
        report = lint_snippet(
            """
            from repro.algorithms.kernels import register_kernel

            class MyAlgorithm:
                pass

            def make_kernel(algorithm):
                pass

            register_kernel(MyAlgorithm, make_kernel)
            """,
            relpath="repro/algorithms/custom.py",
            rules=["R502"],
        )
        assert report.findings == []

    def test_string_target_is_flagged(self, lint_snippet):
        report = lint_snippet(
            """
            from repro.algorithms.kernels import register_kernel

            register_kernel("MyAlgorithm", lambda a: None)
            """,
            relpath="repro/algorithms/custom.py",
            rules=["R502"],
        )
        assert _ids(report) == ["R502"]

    def test_type_call_target_is_flagged(self, lint_snippet):
        report = lint_snippet(
            """
            from repro.adversary.plan import register_planner

            def instance():
                pass

            register_planner(type(instance()), lambda a: None)
            """,
            relpath="repro/adversary/custom.py",
            rules=["R502"],
        )
        assert _ids(report) == ["R502"]

    def test_attribute_target_is_allowed(self, lint_snippet):
        report = lint_snippet(
            """
            import repro.algorithms.ate as ate
            from repro.algorithms.kernels import register_kernel

            register_kernel(ate.AteAlgorithm, lambda a: None)
            """,
            relpath="repro/algorithms/custom.py",
            rules=["R502"],
        )
        assert report.findings == []

"""Fixture tests for A301 (store seam), S401 (strict json.dumps) and
S402 (the schema fingerprint snapshot)."""

from __future__ import annotations

from repro.devtools.lint.schema import (
    SchemaFingerprintRule,
    _queue_payload_shapes,
    compute_schema_shapes,
)
from repro.runner.reduce import ReducedRecord
from repro.runner.spec import CACHE_SCHEMA_VERSION


def _ids(report):
    return [item.rule for item in report.findings]


class TestStoreSeamA301:
    def test_open_for_write_in_runner_is_flagged(self, lint_snippet):
        report = lint_snippet(
            """
            def publish(path, payload):
                with open(path, "w") as handle:
                    handle.write(payload)
            """,
            rules=["A301"],
        )
        assert _ids(report) == ["A301"]

    def test_open_for_read_is_allowed(self, lint_snippet):
        report = lint_snippet(
            """
            def load(path):
                with open(path) as handle:
                    return handle.read()
            """,
            rules=["A301"],
        )
        assert report.findings == []

    def test_path_write_text_and_os_rename_are_flagged(self, lint_snippet):
        report = lint_snippet(
            """
            import os
            from pathlib import Path

            def publish(path, payload):
                Path(path).write_text(payload)
                os.rename(path, path + ".done")
            """,
            rules=["A301"],
        )
        assert _ids(report) == ["A301", "A301"]

    def test_store_receiver_is_the_seam_not_a_bypass(self, lint_snippet):
        report = lint_snippet(
            """
            def publish(self, relpath, payload):
                self.store.write_text(relpath, payload)
            """,
            rules=["A301"],
        )
        assert report.findings == []

    def test_store_py_itself_is_exempt(self, lint_snippet):
        source = """
            def publish(path, payload):
                with open(path, "w") as handle:
                    handle.write(payload)
        """
        seam = lint_snippet(source, relpath="repro/runner/store.py", rules=["A301"])
        assert seam.findings == []

    def test_outside_runner_is_out_of_scope(self, lint_snippet):
        report = lint_snippet(
            """
            def dump(path, payload):
                with open(path, "w") as handle:
                    handle.write(payload)
            """,
            relpath="repro/analysis/report.py",
            rules=["A301"],
        )
        assert report.findings == []


class TestStrictJsonDumpsS401:
    def test_missing_allow_nan_is_flagged(self, lint_snippet):
        report = lint_snippet(
            """
            import json

            def encode(payload):
                return json.dumps(payload)
            """,
            rules=["S401"],
        )
        assert _ids(report) == ["S401"]
        assert "allow_nan=False" in report.findings[0].message

    def test_default_hook_is_flagged_even_with_allow_nan(self, lint_snippet):
        report = lint_snippet(
            """
            import json

            def encode(payload):
                return json.dumps(payload, allow_nan=False, default=str)
            """,
            rules=["S401"],
        )
        assert _ids(report) == ["S401"]
        assert "default=" in report.findings[0].message

    def test_compliant_dumps_is_allowed(self, lint_snippet):
        report = lint_snippet(
            """
            import json

            def encode(payload):
                return json.dumps(payload, sort_keys=True, allow_nan=False)
            """,
            rules=["S401"],
        )
        assert report.findings == []

    def test_outside_runner_is_out_of_scope(self, lint_snippet):
        report = lint_snippet(
            """
            import json

            def encode(payload):
                return json.dumps(payload)
            """,
            relpath="repro/experiments/report.py",
            rules=["S401"],
        )
        assert report.findings == []


class TestSchemaFingerprintS402:
    def test_shipped_tree_matches_snapshot(self):
        rule = SchemaFingerprintRule()
        assert list(rule.finalize()) == []

    def test_reduced_record_shape_change_without_bump_fails(self, monkeypatch):
        """The acceptance criterion: mutate ReducedRecord's serialised
        shape without bumping CACHE_SCHEMA_VERSION and S402 must fire."""
        original = ReducedRecord.as_dict

        def widened(self):
            payload = original(self)
            payload["surprise_field"] = 1
            return payload

        monkeypatch.setattr(ReducedRecord, "as_dict", widened)
        findings = list(SchemaFingerprintRule().finalize())
        assert [item.rule for item in findings] == ["S402"]
        assert "reduced_record" in findings[0].message
        assert "without a CACHE_SCHEMA_VERSION bump" in findings[0].message

    def test_shape_change_with_bump_asks_for_snapshot_refresh(self, monkeypatch):
        import repro.runner.spec as spec_module

        original = ReducedRecord.as_dict

        def widened(self):
            payload = original(self)
            payload["surprise_field"] = 1
            return payload

        monkeypatch.setattr(ReducedRecord, "as_dict", widened)
        monkeypatch.setattr(spec_module, "CACHE_SCHEMA_VERSION", CACHE_SCHEMA_VERSION + 1)
        findings = list(SchemaFingerprintRule().finalize())
        assert [item.rule for item in findings] == ["S402"]
        assert "--update-schema-snapshot" in findings[0].message
        assert "without" not in findings[0].message

    def test_queue_payload_extraction_sees_schema_dicts(self):
        shapes = _queue_payload_shapes(
            'x = {"schema": 2, "b": 1, "a": 2}\n'
            'y = {"unrelated": True}\n'
            'z = {"schema": 2, "b": 1, "a": 2}\n'
        )
        assert shapes == [["a", "b", "schema"]]

    def test_current_shapes_cover_records_and_queue(self):
        shapes = compute_schema_shapes()
        assert shapes["cache_schema_version"] == CACHE_SCHEMA_VERSION
        assert "error" in shapes["reduced_record"]
        assert "agreement" in shapes["run_record"]
        assert any("schema" in payload for payload in shapes["queue_payloads"])

"""Framework tests: the rule registry contract, suppression discipline,
the baseline round-trip and the engine's parse-error path."""

from __future__ import annotations

import json

import pytest

from repro.devtools.lint import available_rules, get_rule, lint_paths, register_rule
from repro.devtools.lint.baseline import (
    BaselineError,
    load_baseline,
    match_baseline,
    write_baseline,
)
from repro.devtools.lint.rules import Rule, _RULES, rule_catalogue_markdown


class TestRuleRegistry:
    def test_all_shipped_families_are_registered(self):
        ids = available_rules()
        for expected in ("D201", "D202", "D203", "A301", "S401", "S402", "R501", "R502"):
            assert expected in ids

    def test_unknown_rule_gets_did_you_mean(self):
        with pytest.raises(ValueError, match=r"did you mean 'D20\d'"):
            get_rule("D200")

    def test_builtin_rules_are_guarded_against_overwrite(self):
        with pytest.raises(ValueError, match="overwrite=True"):

            @register_rule
            class ImpostorRule(Rule):
                """Impostor."""

                id = "D201"
                name = "impostor"

        assert get_rule("D201").name == "unseeded-random"

    def test_custom_rule_registers_and_can_be_replaced(self):
        @register_rule
        class CustomRule(Rule):
            """A custom project rule."""

            id = "X901"
            name = "custom"

        try:
            assert get_rule("X901") is CustomRule

            @register_rule(overwrite=True)
            class CustomRuleV2(Rule):
                """A custom project rule, revised."""

                id = "X901"
                name = "custom"

            assert get_rule("X901") is CustomRuleV2
        finally:
            _RULES.pop("X901", None)

    def test_rules_must_carry_id_name_and_docstring(self):
        with pytest.raises(ValueError, match="rule id"):

            @register_rule
            class NoIdRule(Rule):
                """Docstring present."""

                name = "no-id"

        with pytest.raises(ValueError, match="docstring"):

            @register_rule
            class NoDocRule(Rule):
                id = "X902"
                name = "no-doc"

    def test_catalogue_renders_every_rule_docstring(self):
        catalogue = rule_catalogue_markdown()
        for rule_id in available_rules():
            assert f"### `{rule_id}`" in catalogue


class TestSuppressionDiscipline:
    def test_unjustified_suppression_does_not_suppress_and_is_reported(
        self, lint_snippet
    ):
        report = lint_snippet(
            """
            import uuid

            def run_id():
                return uuid.uuid4()  # repro-lint: ignore[D202]
            """,
            rules=["D202", "L901"],
        )
        assert sorted(item.rule for item in report.findings) == ["D202", "L901"]
        assert report.suppressed == []

    def test_malformed_rule_list_is_reported(self, lint_snippet):
        report = lint_snippet(
            """
            x = 1  # repro-lint: ignore[not-a-rule]: because
            """,
            rules=["L901"],
        )
        assert [item.rule for item in report.findings] == ["L901"]
        assert "not-a-rule" in report.findings[0].message

    def test_suppression_on_line_above_covers_next_line(self, lint_snippet):
        report = lint_snippet(
            """
            import time

            def deadline(ttl):
                # repro-lint: ignore[D202]: lease math needs the wall clock here
                return time.time() + ttl
            """,
            rules=["D202", "L901"],
        )
        assert report.findings == []
        assert [item.rule for item in report.suppressed] == ["D202"]

    def test_suppression_only_covers_named_rules(self, lint_snippet):
        report = lint_snippet(
            """
            import time

            def deadline(ttl):
                return time.time() + ttl  # repro-lint: ignore[D201]: wrong rule id
            """,
            rules=["D202"],
        )
        assert [item.rule for item in report.findings] == ["D202"]

    def test_docstring_mentioning_the_syntax_is_not_a_suppression(self, lint_snippet):
        report = lint_snippet(
            '''
            def helper():
                """Mentions # repro-lint: ignore[D202]: in prose only."""
                return 1
            ''',
            rules=["L901"],
        )
        assert report.findings == []


class TestBaseline:
    def _one_finding_report(self, lint_snippet, baseline=None):
        return lint_snippet(
            """
            import json

            def encode(payload):
                return json.dumps(payload)
            """,
            rules=["S401"],
            baseline=baseline,
        )

    def test_round_trip_accepts_then_goes_stale(
        self, lint_snippet, tmp_path, monkeypatch
    ):
        monkeypatch.chdir(tmp_path)
        baseline_path = tmp_path / "baseline.json"
        report = self._one_finding_report(lint_snippet)
        assert len(report.findings) == 1

        write_baseline(baseline_path, report.findings, [])
        payload = json.loads(baseline_path.read_text(encoding="utf-8"))
        payload["findings"][0]["justification"] = "accepted: fixture for the round-trip test"
        baseline_path.write_text(json.dumps(payload), encoding="utf-8")

        accepted = self._one_finding_report(lint_snippet, baseline=baseline_path)
        assert accepted.findings == []
        assert len(accepted.accepted) == 1
        assert accepted.stale_baseline == []

        clean = lint_paths(
            [tmp_path / "repro" / "runner"], rule_ids=["S401"], baseline_path=baseline_path
        )
        fixed = tmp_path / "repro/runner/module_under_test.py"
        fixed.write_text("x = 1\n", encoding="utf-8")
        clean = lint_paths([fixed], rule_ids=["S401"], baseline_path=baseline_path)
        assert clean.findings == []
        assert len(clean.stale_baseline) == 1

    def test_placeholder_justification_is_rejected_on_load(
        self, lint_snippet, tmp_path, monkeypatch
    ):
        monkeypatch.chdir(tmp_path)
        baseline_path = tmp_path / "baseline.json"
        report = self._one_finding_report(lint_snippet)
        write_baseline(baseline_path, report.findings, [])
        with pytest.raises(BaselineError, match="justification"):
            load_baseline(baseline_path)
        assert len(load_baseline(baseline_path, strict=False)) == 1

    def test_duplicated_violation_needs_two_entries(self, lint_snippet, monkeypatch, tmp_path):
        monkeypatch.chdir(tmp_path)
        report = lint_snippet(
            """
            import json

            def encode(payload):
                return json.dumps(payload)

            def encode_again(payload):
                return json.dumps(payload)
            """,
            rules=["S401"],
        )
        assert len(report.findings) == 2
        entries = write_baseline(tmp_path / "b.json", report.findings[:1], [])
        matched = match_baseline(report.findings, entries)
        assert len(matched.accepted) == 1
        assert len(matched.new) == 1

    def test_update_preserves_surviving_justifications(self, tmp_path):
        from repro.devtools.lint.findings import Finding

        finding = Finding(rule="S401", path="repro/runner/x.py", line=3, col=0, message="m")
        baseline_path = tmp_path / "b.json"
        first = write_baseline(baseline_path, [finding], [])
        hand_filled = [
            type(entry)(
                rule=entry.rule,
                path=entry.path,
                message=entry.message,
                justification="hand-written reason",
            )
            for entry in first
        ]
        second = write_baseline(baseline_path, [finding], hand_filled)
        assert second[0].justification == "hand-written reason"


class TestEngine:
    def test_unparseable_file_is_a_finding_not_a_crash(self, tmp_path):
        bad = tmp_path / "repro" / "runner" / "broken.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("def broken(:\n", encoding="utf-8")
        report = lint_paths([bad])
        assert [item.rule for item in report.findings] == ["L902"]

    def test_directory_walk_is_deterministic_and_deduplicated(self, tmp_path):
        root = tmp_path / "repro" / "runner"
        root.mkdir(parents=True)
        (root / "b.py").write_text("x = 1\n", encoding="utf-8")
        (root / "a.py").write_text("y = 2\n", encoding="utf-8")
        report = lint_paths([root, root / "a.py"], rule_ids=["D201"])
        assert report.checked_files == 2

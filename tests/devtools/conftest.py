"""Shared helpers for the repro-lint test-suite.

Fixture snippets are written under ``tmp_path/repro/...`` so the
path-scoped rules (A301, S401 target ``repro/runner/``; the D202 clock
seam keys on ``repro/runner/distributed.py``) scope fixture trees
exactly like the real source tree.
"""

from __future__ import annotations

import textwrap
from pathlib import Path
from typing import List, Optional, Sequence

import pytest

from repro.devtools.lint import LintReport, lint_paths


@pytest.fixture
def lint_snippet(tmp_path):
    """Write a snippet at ``repro/<relpath>`` under tmp_path and lint it."""

    def _lint(
        source: str,
        relpath: str = "repro/runner/module_under_test.py",
        rules: Optional[Sequence[str]] = None,
        baseline: Optional[Path] = None,
    ) -> LintReport:
        target = tmp_path / relpath
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(source), encoding="utf-8")
        return lint_paths([target], rule_ids=rules, baseline_path=baseline)

    return _lint


def rule_ids(report: LintReport) -> List[str]:
    """The rule ids of a report's unbaselined findings, in output order."""
    return [item.rule for item in report.findings]

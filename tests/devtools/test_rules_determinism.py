"""Fixture tests for the D family: D201 unseeded randomness, D202
wall-clock/entropy reads, D203 set-iteration order, D204 unseeded
NumPy randomness."""

from __future__ import annotations


def _ids(report):
    return [item.rule for item in report.findings]


class TestUnseededRandomD201:
    def test_module_level_random_call_is_flagged(self, lint_snippet):
        report = lint_snippet(
            """
            import random

            def draw():
                return random.random()
            """,
            rules=["D201"],
        )
        assert _ids(report) == ["D201"]
        assert "random.random" in report.findings[0].message

    def test_from_import_and_alias_are_resolved(self, lint_snippet):
        report = lint_snippet(
            """
            import random as rnd
            from random import randint

            def draw():
                return rnd.choice([1, 2]) + randint(0, 1)
            """,
            rules=["D201"],
        )
        assert _ids(report) == ["D201", "D201"]

    def test_seeded_random_instance_is_allowed(self, lint_snippet):
        report = lint_snippet(
            """
            import random

            def make_rng(seed):
                rng = random.Random(seed)
                return rng.random()
            """,
            rules=["D201"],
        )
        assert report.findings == []

    def test_unseeded_random_constructor_is_flagged(self, lint_snippet):
        report = lint_snippet(
            """
            import random

            def make_rng():
                return random.Random()
            """,
            rules=["D201"],
        )
        assert _ids(report) == ["D201"]
        assert "without a seed" in report.findings[0].message

    def test_unrelated_module_named_like_random_is_not_flagged(self, lint_snippet):
        report = lint_snippet(
            """
            import not_random

            def draw():
                return not_random.random()
            """,
            rules=["D201"],
        )
        assert report.findings == []


class TestWallClockD202:
    def test_time_time_and_uuid4_are_flagged(self, lint_snippet):
        report = lint_snippet(
            """
            import time
            import uuid

            def stamp():
                return time.time(), uuid.uuid4()
            """,
            rules=["D202"],
        )
        assert _ids(report) == ["D202", "D202"]

    def test_datetime_now_via_from_import_is_flagged(self, lint_snippet):
        report = lint_snippet(
            """
            from datetime import datetime

            def stamp():
                return datetime.now()
            """,
            rules=["D202"],
        )
        assert _ids(report) == ["D202"]

    def test_os_urandom_is_flagged(self, lint_snippet):
        report = lint_snippet(
            """
            import os

            def entropy():
                return os.urandom(8)
            """,
            rules=["D202"],
        )
        assert _ids(report) == ["D202"]

    def test_monotonic_clocks_are_allowed(self, lint_snippet):
        report = lint_snippet(
            """
            import time

            def measure():
                start = time.monotonic()
                return time.perf_counter() - start
            """,
            rules=["D202"],
        )
        assert report.findings == []

    def test_clock_seam_allows_time_time_in_distributed(self, lint_snippet):
        source = """
            import time

            def lease_deadline(ttl):
                return time.time() + ttl
        """
        seam = lint_snippet(source, relpath="repro/runner/distributed.py", rules=["D202"])
        assert seam.findings == []
        elsewhere = lint_snippet(source, relpath="repro/runner/executor.py", rules=["D202"])
        assert _ids(elsewhere) == ["D202"]

    def test_suppression_with_justification_silences(self, lint_snippet):
        report = lint_snippet(
            """
            import uuid

            def run_id():
                return uuid.uuid4()  # repro-lint: ignore[D202]: ad-hoc ids are deliberately unique
            """,
            rules=["D202"],
        )
        assert report.findings == []
        assert [item.rule for item in report.suppressed] == ["D202"]
        assert "deliberately unique" in report.suppressed[0].justification


class TestUnseededNumpyRandomD204:
    def test_global_numpy_draws_are_flagged(self, lint_snippet):
        report = lint_snippet(
            """
            import numpy as np
            from numpy.random import randint

            def draw():
                return np.random.rand(3) + randint(0, 4)
            """,
            rules=["D204"],
        )
        assert _ids(report) == ["D204", "D204"]
        assert "ambient global" in report.findings[0].message

    def test_unseeded_constructors_are_flagged(self, lint_snippet):
        report = lint_snippet(
            """
            import numpy as np
            from numpy.random import default_rng

            def make():
                return np.random.RandomState(), default_rng()
            """,
            rules=["D204"],
        )
        assert _ids(report) == ["D204", "D204"]
        assert "without a seed" in report.findings[0].message

    def test_seeded_constructors_are_allowed(self, lint_snippet):
        report = lint_snippet(
            """
            import numpy as np

            def make(seed):
                state = np.random.RandomState(seed)
                rng = np.random.default_rng(seed=seed)
                return state.randint(0, 4), rng.random()
            """,
            rules=["D204"],
        )
        assert report.findings == []

    def test_draws_on_a_seeded_state_variable_are_allowed(self, lint_snippet):
        report = lint_snippet(
            """
            import numpy as np

            def draw(state):
                return state.randint(0, 1 << 32, size=8)
            """,
            rules=["D204"],
        )
        assert report.findings == []

    def test_rng_bridge_seam_allows_bare_randomstate(self, lint_snippet):
        source = """
            import numpy as np

            def lift(key, pos):
                state = np.random.RandomState()
                state.set_state(("MT19937", key, pos))
                return state
        """
        seam = lint_snippet(source, relpath="repro/adversary/rng_bridge.py", rules=["D204"])
        assert seam.findings == []
        elsewhere = lint_snippet(source, relpath="repro/adversary/batch_plan.py", rules=["D204"])
        assert _ids(elsewhere) == ["D204"]


class TestSetIterationD203:
    def test_for_over_set_literal_is_flagged(self, lint_snippet):
        report = lint_snippet(
            """
            def emit(out):
                for item in {"b", "a"}:
                    out.append(item)
            """,
            rules=["D203"],
        )
        assert _ids(report) == ["D203"]

    def test_comprehension_over_set_comp_is_flagged(self, lint_snippet):
        report = lint_snippet(
            """
            def receivers(intended):
                return [r for r in {x for per in intended.values() for x in per}]
            """,
            rules=["D203"],
        )
        assert _ids(report) == ["D203"]

    def test_list_of_set_call_is_flagged(self, lint_snippet):
        report = lint_snippet(
            """
            def order(items):
                return list(set(items))
            """,
            rules=["D203"],
        )
        assert _ids(report) == ["D203"]

    def test_sorted_set_is_allowed(self, lint_snippet):
        report = lint_snippet(
            """
            def order(intended):
                for receiver in sorted({r for per in intended.values() for r in per}):
                    yield receiver
                return sorted(set(intended))
            """,
            rules=["D203"],
        )
        assert report.findings == []

    def test_membership_test_against_set_is_allowed(self, lint_snippet):
        report = lint_snippet(
            """
            def is_known(value):
                return value in {"a", "b"}
            """,
            rules=["D203"],
        )
        assert report.findings == []

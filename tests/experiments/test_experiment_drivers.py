"""Tests for the experiment drivers (E1-E12) with reduced problem sizes.

These tests assert the *shape* of each report (columns, row counts) and
the paper-level facts the drivers are meant to demonstrate (e.g. in-range
rows are fully safe), using smaller run counts than the benchmark
defaults so the whole module stays fast.
"""

from repro.experiments import (
    ALL_EXPERIMENTS,
    alive_predicate_effect,
    ate_resilience_sweep,
    benign_baselines,
    byzantine_predicates,
    corruption_taxonomy,
    fast_decision,
    lamport_attainment,
    santoro_widmayer_circumvention,
    ulive_predicate_effect,
    ute_resilience_sweep,
    validate_ate_row,
    validate_ute_row,
)
from repro.experiments.common import ExperimentReport


class TestReportInfrastructure:
    def test_registry_contains_all_twelve(self):
        assert set(ALL_EXPERIMENTS) == {f"E{i}" for i in range(1, 13)}

    def test_report_render_and_json(self, tmp_path):
        report = ExperimentReport(experiment_id="EX", title="demo", paper_claim="claim")
        report.add_row(a=1, b="x")
        report.add_note("note text")
        text = report.render()
        assert "EX" in text and "claim" in text and "note text" in text
        payload = report.to_json(tmp_path / "out" / "report.json")
        assert (tmp_path / "out" / "report.json").exists()
        assert '"experiment_id": "EX"' in payload


class TestTable1Drivers:
    def test_e1_in_range_rows_fully_correct(self):
        report = validate_ate_row(n=8, runs=6, seed=3, max_rounds=40)
        in_range = [row for row in report.rows if row["in_range"]]
        assert in_range, "expected at least one in-range alpha"
        for row in in_range:
            assert row["agreement_rate"] == 1.0
            assert row["integrity_rate"] == 1.0
            assert row["termination_rate"] == 1.0
            assert row["counterexamples"] == 0
            assert row["theorem_1_satisfied"]

    def test_e1_includes_beyond_range_row(self):
        report = validate_ate_row(n=8, runs=4, seed=3, max_rounds=30)
        beyond = [row for row in report.rows if not row["in_range"]]
        assert beyond and not beyond[0]["theorem_1_satisfied"]

    def test_e2_in_range_rows_fully_correct(self):
        report = validate_ute_row(n=8, runs=5, seed=3, max_rounds=60)
        in_range = [row for row in report.rows if row["in_range"]]
        assert in_range
        for row in in_range:
            assert row["agreement_rate"] == 1.0
            assert row["integrity_rate"] == 1.0
            assert row["termination_rate"] == 1.0
            assert row["theorem_2_satisfied"]

    def test_e2_tolerates_more_alpha_than_e1(self):
        e1 = validate_ate_row(n=9, runs=3, seed=1, max_rounds=30)
        e2 = validate_ute_row(n=9, runs=3, seed=1, max_rounds=60)
        max_e1 = max(row["alpha"] for row in e1.rows if row["in_range"])
        max_e2 = max(row["alpha"] for row in e2.rows if row["in_range"])
        assert max_e2 > max_e1


class TestLivenessDrivers:
    def test_e3_good_rounds_terminate_and_starved_do_not(self):
        report = alive_predicate_effect(n=8, alpha=1, runs=5, seed=2, max_rounds=40)
        rows = {row["environment"]: row for row in report.rows}
        good = rows["good-rounds (P^A,live holds)"]
        starved = rows["starved (no good rounds)"]
        assert good["termination_rate"] == 1.0
        assert starved["termination_rate"] == 0.0
        # Safety holds in every environment.
        assert all(row["agreement_rate"] == 1.0 for row in report.rows)
        assert all(row["integrity_rate"] == 1.0 for row in report.rows)

    def test_e3_transient_bad_prefix_recovers(self):
        report = alive_predicate_effect(n=8, alpha=1, runs=4, seed=5, max_rounds=40)
        rows = {row["environment"]: row for row in report.rows}
        late = rows["late good rounds (transient bad prefix)"]
        assert late["termination_rate"] == 1.0

    def test_e4_good_phases_terminate_and_starved_do_not(self):
        report = ulive_predicate_effect(n=8, alpha=2, runs=5, seed=2, max_rounds=60)
        rows = {row["environment"]: row for row in report.rows}
        assert rows["good-phases (P^U,live holds)"]["termination_rate"] == 1.0
        assert rows["starved (|HO| never exceeds E)"]["termination_rate"] == 0.0
        assert all(row["agreement_rate"] == 1.0 for row in report.rows)


class TestTaxonomyDriver:
    def test_e5_covers_four_classes_and_two_algorithms(self):
        report = corruption_taxonomy(n=8, f=1, runs=4, seed=2, max_rounds=40)
        assert len(report.rows) == 8
        classes = {row["fault_class"] for row in report.rows}
        assert len(classes) == 4
        assert all(row["agreement_rate"] == 1.0 for row in report.rows)


class TestResilienceDrivers:
    def test_e6_feasible_rows_safe_and_live(self):
        report = ate_resilience_sweep(n=8, runs=6, seed=4, max_rounds=40)
        for row in report.rows:
            if row["feasible"]:
                assert row["agreement_rate"] == 1.0
                assert row["integrity_rate"] == 1.0
                assert row["termination_rate_live_env"] == 1.0
                assert row["integer_threshold_pairs"] > 0
            else:
                assert row["integer_threshold_pairs"] == 0

    def test_e7_feasible_rows_safe(self):
        report = ute_resilience_sweep(n=7, runs=6, seed=4, max_rounds=60)
        for row in report.rows:
            if row["feasible"]:
                assert row["agreement_rate"] == 1.0
                assert row["integrity_rate"] == 1.0

    def test_e7_boundary_is_half(self):
        report = ute_resilience_sweep(n=7, runs=2, seed=4, max_rounds=30)
        feasible_alphas = [row["alpha"] for row in report.rows if row["feasible"]]
        infeasible_alphas = [row["alpha"] for row in report.rows if not row["feasible"]]
        assert max(feasible_alphas) == 3
        assert min(infeasible_alphas) == 4


class TestLowerBoundDrivers:
    def test_e8_block_faults_never_break_safety(self):
        report = santoro_widmayer_circumvention(n=8, runs=5, seed=3, max_rounds=40)
        assert all(row["agreement_rate"] == 1.0 for row in report.rows)
        assert all(row["integrity_rate"] == 1.0 for row in report.rows)
        with_good = [r for r in report.rows if "sporadic good rounds" in r["configuration"]]
        assert with_good and with_good[0]["termination_rate"] == 1.0

    def test_e8_reports_corruption_beyond_sw_bound(self):
        report = santoro_widmayer_circumvention(n=8, runs=4, seed=3, max_rounds=40)
        heavy = [r for r in report.rows if "heavy rotating corruption" in r["configuration"]]
        assert heavy and heavy[0]["max_corrupted_receptions_in_a_round"] >= heavy[0]["sw_bound_per_round"]

    def test_e9_fast_decision_rounds(self):
        report = fast_decision(n=9, runs=5, seed=2, max_rounds=20)
        rows = {(row["scenario"], row["algorithm"]): row for row in report.rows}
        unanimous = rows[("fault-free, unanimous initial values", "A_(T,E)")]
        split = rows[("fault-free, split initial values", "A_(T,E)")]
        phase_king = rows[("fault-free, split initial values", "PhaseKing(f=1)")]
        assert unanimous["max_decision_round"] == 1
        assert split["max_decision_round"] == 2
        assert phase_king["max_decision_round"] == 4
        assert split["max_decision_round"] < phase_king["max_decision_round"]

    def test_e9_corrupted_prefix_decides_shortly_after_clean_round(self):
        report = fast_decision(n=9, runs=5, seed=2, max_rounds=20)
        rows = {(row["scenario"], row["algorithm"]): row for row in report.rows}
        burst = rows[("alpha corruptions/round for 3 rounds, then clean", "A_(T,E)")]
        assert burst["termination_rate"] == 1.0
        assert burst["max_decision_round"] <= 6

    def test_e10_bounds_attained_and_safe(self):
        report = lamport_attainment(ns=(5, 9), runs=3, seed=2, max_rounds=30)
        for row in report.rows:
            assert row["ate_bound_satisfied"] and row["ute_bound_satisfied"]
            assert row["ate_tight"] and row["ute_tight"]
            assert row["ate_safety_rate_sim"] == 1.0
            assert row["ute_safety_rate_sim"] == 1.0


class TestByzantineAndBenignDrivers:
    def test_e11_predicates_hold_and_ute_terminates(self):
        report = byzantine_predicates(n=8, f=1, runs=4, seed=3, max_rounds=60)
        rows = {row["algorithm"]: row for row in report.rows}
        assert all(row["predicates_hold"] for row in report.rows)
        assert rows["U_(T,E,alpha=f)"]["termination_rate"] == 1.0
        assert rows["U_(T,E,alpha=f)"]["agreement_rate"] == 1.0
        assert rows["PhaseKing(f=1)"]["termination_rate"] == 1.0

    def test_e12_equivalence_and_omission_sweep(self):
        report = benign_baselines(n=8, runs=5, seed=3, max_rounds=40, drop_probabilities=(0.0, 0.2))
        equivalence = [row for row in report.rows if "OneThirdRule" in str(row.get("check", ""))]
        assert equivalence and equivalence[0]["mismatches"] == 0
        sweep = [row for row in report.rows if row.get("check") == "omission sweep"]
        assert sweep
        assert all(row["agreement_rate"] == 1.0 for row in sweep)

"""Integration tests for the Section 5.1 lower-bound comparisons (E8-E10 claims)."""

from repro.adversary import (
    BlockFaultAdversary,
    PeriodicGoodRoundAdversary,
    ReliableAdversary,
    RotatingSenderCorruptionAdversary,
    SequentialAdversary,
)
from repro.algorithms import AteAlgorithm, PhaseKingAlgorithm, UteAlgorithm
from repro.analysis.bounds import martin_alvisi_max_faulty, santoro_widmayer_bound
from repro.analysis.feasibility import ate_max_alpha
from repro.core.parameters import AteParameters, UteParameters
from repro.simulation.engine import run_consensus
from repro.workloads import generators

import pytest

# Exhaustive sweeps: CI's fast matrix legs deselect these with -m 'not slow'.
pytestmark = pytest.mark.slow


class TestSantoroWidmayerCircumvention:
    def test_block_faults_at_the_impossibility_threshold_keep_safety(self):
        """floor(n/2) corrupted transmissions per round, arranged in blocks —
        the exact pattern behind the impossibility of [18] — never violates
        safety of A_{T,E} or U_{T,E,alpha}."""
        n = 10
        block = santoro_widmayer_bound(n)
        for seed in range(4):
            for algorithm in (
                AteAlgorithm.symmetric(n=n, alpha=ate_max_alpha(n)),
                UteAlgorithm.minimal(n=n, alpha=2),
            ):
                result = run_consensus(
                    algorithm,
                    generators.split(n),
                    BlockFaultAdversary(faults_per_round=block, value_domain=(0, 1), seed=seed),
                    max_rounds=40,
                )
                assert result.safe

    def test_block_faults_plus_good_rounds_terminate(self):
        n = 10
        block = santoro_widmayer_bound(n)
        adversary = PeriodicGoodRoundAdversary(
            inner=BlockFaultAdversary(faults_per_round=block, value_domain=(0, 1), seed=5),
            period=5,
        )
        result = run_consensus(
            AteAlgorithm.symmetric(n=n, alpha=ate_max_alpha(n)),
            generators.split(n),
            adversary,
            max_rounds=60,
        )
        assert result.all_satisfied

    def test_per_round_corruption_far_beyond_sw_bound_is_absorbed(self):
        """alpha corrupted receptions per receiver = alpha*n per round in total,
        well above floor(n/2), and safety still holds (the n^2/4 capacity claim)."""
        n = 12
        alpha = ate_max_alpha(n)
        adversary = PeriodicGoodRoundAdversary(
            inner=RotatingSenderCorruptionAdversary(alpha=alpha, value_domain=(0, 1), seed=3),
            period=4,
        )
        result = run_consensus(
            AteAlgorithm.symmetric(n=n, alpha=alpha), generators.split(n), adversary, max_rounds=60
        )
        assert result.all_satisfied
        peak = max(result.collection.corruption_profile())
        assert peak > santoro_widmayer_bound(n)


class TestFastDecisionVsMartinAlvisi:
    def test_ate_is_fast_with_more_per_round_corruption_than_the_static_bound(self):
        n = 9
        alpha = ate_max_alpha(n)
        assert alpha > martin_alvisi_max_faulty(n)
        params = AteParameters.symmetric(n=n, alpha=alpha)
        # Fault-free run: two rounds.
        clean = run_consensus(
            AteAlgorithm(params), generators.split(n), ReliableAdversary(), max_rounds=6
        )
        assert clean.last_decision_round == 2
        # Corruption in the first rounds, then a clean round: decision follows quickly.
        burst = SequentialAdversary(
            [
                (1, RotatingSenderCorruptionAdversary(alpha=alpha, value_domain=(0, 1), seed=2)),
                (4, ReliableAdversary()),
            ]
        )
        recovered = run_consensus(
            AteAlgorithm(params), generators.split(n), burst, max_rounds=20
        )
        assert recovered.all_satisfied
        assert recovered.last_decision_round <= 6

    def test_phase_king_pays_static_fault_latency(self):
        n = 9
        f = 2
        result = run_consensus(
            PhaseKingAlgorithm(n, f=f), generators.split(n), ReliableAdversary(), max_rounds=12
        )
        assert result.all_satisfied
        assert result.last_decision_round == 2 * (f + 1)
        # A_{T,E} decides in 2 rounds in the same environment.
        fast = run_consensus(
            AteAlgorithm.symmetric(n=n, alpha=2), generators.split(n), ReliableAdversary(), max_rounds=12
        )
        assert fast.last_decision_round == 2


class TestLamportBoundConfigurations:
    def test_u_safe_only_configuration_never_violates_safety(self):
        """U at alpha = (n-1)/2 (the Lamport M value): safety under P_alpha-bounded corruption."""
        n = 9
        alpha = (n - 1) // 2
        params = UteParameters.minimal(n=n, alpha=alpha)
        for seed in range(4):
            result = run_consensus(
                UteAlgorithm(params),
                generators.split(n),
                RotatingSenderCorruptionAdversary(alpha=alpha, value_domain=(0, 1), seed=seed),
                max_rounds=30,
            )
            assert result.safe

    def test_a_safe_and_fast_configuration(self):
        """A at alpha = (n-1)/4: still fast in clean runs, safe under that corruption level."""
        n = 9
        alpha = (n - 1) // 4
        params = AteParameters.symmetric(n=n, alpha=alpha)
        clean = run_consensus(
            AteAlgorithm(params), generators.split(n), ReliableAdversary(), max_rounds=6
        )
        assert clean.last_decision_round == 2
        corrupted = run_consensus(
            AteAlgorithm(params),
            generators.split(n),
            RotatingSenderCorruptionAdversary(alpha=alpha, value_domain=(0, 1), seed=1),
            max_rounds=30,
        )
        assert corrupted.safe

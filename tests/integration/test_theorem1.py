"""Integration tests for Theorem 1: ``⟨A_{T,E}, P_alpha ∧ P^{A,live}⟩`` solves consensus.

Each test runs full HO machines end to end — algorithm, adversary,
predicate check, consensus check — across seeds, initial configurations
and parameter choices, asserting that no run satisfying the predicates
violates any consensus clause, and that the fast-decision claims hold.
"""

import pytest

from repro.adversary import (
    PartialGoodRoundAdversary,
    PeriodicGoodRoundAdversary,
    RandomCorruptionAdversary,
    RandomOmissionAdversary,
    ReliableAdversary,
    RotatingSenderCorruptionAdversary,
    SplitVoteAdversary,
)
from repro.algorithms import AteAlgorithm
from repro.core.machine import HOMachine
from repro.core.parameters import AteParameters
from repro.core.predicates import AlphaSafePredicate
from repro.simulation.engine import SimulationConfig, run_algorithm, run_consensus
from repro.verification.invariants import standard_monitors
from repro.workloads import generators

# Exhaustive sweeps: CI's fast matrix legs deselect these with -m 'not slow'.
pytestmark = pytest.mark.slow


class TestTheorem1Safety:
    @pytest.mark.parametrize("n,alpha", [(5, 1), (9, 2), (12, 2), (13, 3)])
    def test_safety_under_alpha_bounded_corruption(self, n, alpha):
        params = AteParameters.symmetric(n=n, alpha=alpha)
        machine = HOMachine(AteAlgorithm(params), AlphaSafePredicate(alpha))
        for seed in range(4):
            initial = generators.uniform_random(n, seed=seed)
            monitors = standard_monitors(initial)
            result = run_algorithm(
                AteAlgorithm(params),
                initial,
                RandomCorruptionAdversary(alpha=alpha, value_domain=(0, 1), seed=seed),
                config=SimulationConfig(max_rounds=40, record_states=True),
                observers=monitors,
            )
            verdict = result.verdict(machine)
            assert verdict.predicate_held
            assert not verdict.safety_counterexample
            assert all(monitor.ok for monitor in monitors)

    def test_safety_under_rotating_sender_corruption(self):
        """Dynamic faults: a different set of senders is corrupted every round."""
        n, alpha = 9, 2
        params = AteParameters.symmetric(n=n, alpha=alpha)
        for seed in range(4):
            result = run_consensus(
                AteAlgorithm(params),
                generators.split(n),
                RotatingSenderCorruptionAdversary(alpha=alpha, value_domain=(0, 1), seed=seed),
                max_rounds=30,
            )
            assert result.check_predicate(AlphaSafePredicate(alpha))
            assert result.safe

    def test_safety_under_split_vote_attack_within_budget(self):
        n, alpha = 12, 2
        params = AteParameters.symmetric(n=n, alpha=alpha)
        result = run_consensus(
            AteAlgorithm(params),
            generators.split(n),
            SplitVoteAdversary(budget_per_receiver=alpha, value_a=0, value_b=1, seed=1),
            max_rounds=30,
        )
        assert result.safe

    def test_safety_under_unbounded_omissions(self):
        """Like OneThirdRule, A_{T,E} stays safe under any number of benign faults."""
        n = 9
        params = AteParameters.symmetric(n=n, alpha=1)
        for drop in (0.4, 0.8, 1.0):
            result = run_consensus(
                AteAlgorithm(params),
                generators.split(n),
                RandomOmissionAdversary(drop_probability=drop, seed=int(drop * 10)),
                max_rounds=25,
            )
            assert result.safe

    def test_integrity_with_unanimous_inputs_despite_corruption(self):
        n, alpha = 9, 2
        params = AteParameters.symmetric(n=n, alpha=alpha)
        for seed in range(4):
            result = run_consensus(
                AteAlgorithm(params),
                generators.unanimous(n, value=7),
                PeriodicGoodRoundAdversary(
                    inner=RandomCorruptionAdversary(alpha=alpha, value_domain=(0, 1, 7), seed=seed),
                    period=3,
                ),
                max_rounds=30,
            )
            assert result.integrity
            if result.decision_values:
                assert result.decision_values == (7,)


class TestTheorem1Liveness:
    def test_termination_under_sporadic_good_rounds(self):
        n, alpha = 9, 2
        params = AteParameters.symmetric(n=n, alpha=alpha)
        for seed in range(4):
            result = run_consensus(
                AteAlgorithm(params),
                generators.uniform_random(n, seed=seed),
                PeriodicGoodRoundAdversary(
                    inner=RandomCorruptionAdversary(alpha=alpha, value_domain=(0, 1), seed=seed),
                    period=4,
                ),
                max_rounds=60,
            )
            assert result.all_satisfied
            # Every decision happens no later than shortly after a perfect round.
            assert result.last_decision_round <= 8

    def test_liveness_predicate_holds_when_run_continues_past_good_rounds(self):
        """On a prefix long enough to contain good rounds *and* later activity,
        the finite-trace reading of P^A,live holds for this environment."""
        n, alpha = 9, 2
        params = AteParameters.symmetric(n=n, alpha=alpha)
        algorithm = AteAlgorithm(params)
        liveness = algorithm.liveness_predicate()
        from repro.simulation.engine import SimulationConfig, run_algorithm

        result = run_algorithm(
            AteAlgorithm(params),
            generators.uniform_random(n, seed=1),
            PeriodicGoodRoundAdversary(
                inner=RandomCorruptionAdversary(alpha=alpha, value_domain=(0, 1), seed=1),
                period=4,
            ),
            config=SimulationConfig(max_rounds=20, min_rounds=20, record_states=False),
        )
        assert liveness.holds(result.collection)
        assert result.all_satisfied

    def test_termination_with_partial_good_rounds(self):
        """The general Figure 1 structure: only Π¹ hears (exactly) Π², yet consensus completes."""
        n, alpha = 9, 1
        params = AteParameters.symmetric(n=n, alpha=alpha)
        pi2 = list(range(8))            # |Π²| = 8 > T ≈ 7.33
        pi1 = list(range(9))            # everyone
        adversary = PartialGoodRoundAdversary(
            inner=RandomCorruptionAdversary(alpha=alpha, value_domain=(0, 1), seed=3),
            pi1=pi1,
            pi2=pi2,
            period=3,
        )
        result = run_consensus(
            AteAlgorithm(params), generators.split(n), adversary, max_rounds=60
        )
        assert result.all_satisfied

    def test_fast_decision_fault_free(self):
        n = 9
        params = AteParameters.symmetric(n=n, alpha=2)
        split_result = run_consensus(
            AteAlgorithm(params), generators.split(n), ReliableAdversary(), max_rounds=10
        )
        assert split_result.all_satisfied and split_result.last_decision_round == 2
        unanimous_result = run_consensus(
            AteAlgorithm(params), generators.unanimous(n, value=1), ReliableAdversary(), max_rounds=10
        )
        assert unanimous_result.all_satisfied and unanimous_result.last_decision_round == 1

    def test_decision_values_are_always_initial_values(self):
        """Validity: corrupted values never leak into decisions under P_alpha
        with in-range parameters (corruption domain includes poison values)."""
        n, alpha = 9, 2
        params = AteParameters.symmetric(n=n, alpha=alpha)
        for seed in range(4):
            result = run_consensus(
                AteAlgorithm(params),
                generators.split(n),
                PeriodicGoodRoundAdversary(
                    inner=RandomCorruptionAdversary(alpha=alpha, seed=seed),  # poison values
                    period=3,
                ),
                max_rounds=60,
            )
            assert result.all_satisfied
            assert result.validity


class TestTheorem1Boundary:
    def test_agreement_breaks_when_corruption_exceeds_assumed_alpha(self):
        """Outside P_alpha the machine makes no promise — and a targeted attack
        with a larger budget does break Agreement for small thresholds."""
        n = 4
        params = AteParameters(n=n, alpha=1, threshold=2, enough=2)
        broken = 0
        for seed in range(6):
            result = run_consensus(
                AteAlgorithm(params),
                generators.split(n),
                SplitVoteAdversary(budget_per_receiver=2, value_a=0, value_b=1, seed=seed),
                max_rounds=10,
            )
            if not result.agreement:
                broken += 1
        assert broken > 0

    def test_same_attack_is_harmless_with_theorem_1_thresholds(self):
        n = 4
        params = AteParameters.symmetric(n=n, alpha=0)
        for seed in range(6):
            result = run_consensus(
                AteAlgorithm(params),
                generators.split(n),
                SplitVoteAdversary(budget_per_receiver=0, value_a=0, value_b=1, seed=seed),
                max_rounds=10,
            )
            assert result.safe

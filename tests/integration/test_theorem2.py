"""Integration tests for Theorem 2: ``⟨U_{T,E,α}, P_α ∧ P^{U,safe} ∧ P^{U,live}⟩`` solves consensus."""

import pytest

from repro.adversary import (
    MinimumSafeDeliveryAdversary,
    PeriodicGoodPhaseAdversary,
    RandomCorruptionAdversary,
    ReliableAdversary,
    SplitVoteAdversary,
    StaticByzantineAdversary,
)
from repro.algorithms import UteAlgorithm
from repro.core.machine import HOMachine
from repro.core.parameters import UteParameters
from repro.core.predicates import AlphaSafePredicate, AndPredicate, USafePredicate
from repro.simulation.engine import SimulationConfig, run_algorithm, run_consensus
from repro.verification.invariants import SingleTrueVoteMonitor, standard_monitors
from repro.workloads import generators

# Exhaustive sweeps: CI's fast matrix legs deselect these with -m 'not slow'.
pytestmark = pytest.mark.slow


def _theorem2_adversary(params: UteParameters, seed: int, period: int = 3):
    """An environment satisfying the full predicate conjunction of Theorem 2."""
    inner = RandomCorruptionAdversary(
        alpha=int(params.alpha), value_domain=(0, 1), seed=seed
    )
    constrained = MinimumSafeDeliveryAdversary.for_strict_bound(
        inner, float(params.u_safe_minimum)
    )
    return PeriodicGoodPhaseAdversary(inner=constrained, period=period)


class TestTheorem2Safety:
    @pytest.mark.parametrize("n,alpha", [(6, 1), (8, 2), (9, 3), (11, 4)])
    def test_safety_and_liveness_under_full_predicate(self, n, alpha):
        params = UteParameters.minimal(n=n, alpha=alpha)
        machine = HOMachine(UteAlgorithm(params), UteAlgorithm(params).safety_predicate())
        for seed in range(3):
            initial = generators.uniform_random(n, seed=seed)
            monitors = standard_monitors(initial) + [SingleTrueVoteMonitor()]
            result = run_algorithm(
                UteAlgorithm(params),
                initial,
                _theorem2_adversary(params, seed),
                config=SimulationConfig(max_rounds=60, record_states=True),
                observers=monitors,
            )
            verdict = result.verdict(machine)
            assert verdict.predicate_held, verdict.predicate_violations[:2]
            assert not verdict.counterexample
            assert result.all_satisfied
            assert all(monitor.ok for monitor in monitors)

    def test_safety_under_corruption_only_p_alpha(self):
        """P_alpha-bounded corruption without omissions also satisfies P^U,safe
        for moderate alpha, so safety is owed and must hold."""
        n, alpha = 9, 2
        params = UteParameters.minimal(n=n, alpha=alpha)
        safety = AndPredicate(
            [AlphaSafePredicate(alpha), USafePredicate(n, alpha, params.threshold, params.enough)]
        )
        for seed in range(4):
            result = run_consensus(
                UteAlgorithm(params),
                generators.split(n),
                RandomCorruptionAdversary(alpha=alpha, value_domain=(0, 1), seed=seed),
                max_rounds=50,
            )
            assert safety.holds(result.collection)
            assert result.safe

    def test_integrity_with_unanimous_inputs(self):
        n, alpha = 9, 3
        params = UteParameters.minimal(n=n, alpha=alpha)
        for seed in range(3):
            result = run_consensus(
                UteAlgorithm(params),
                generators.unanimous(n, value=5),
                _theorem2_adversary(params, seed),
                max_rounds=60,
            )
            assert result.integrity
            assert result.decision_values in ((), (5,))

    def test_safety_under_static_byzantine_senders(self):
        """Section 5.2: the classical setting with f = alpha permanent corrupted senders.

        With ``E = n/2 + f`` strictly below ``n − f`` (here f=2, n=10) the
        clean majority alone can drive decisions, so the machine both stays
        safe and terminates despite never seeing a corruption-free round.
        """
        n, f = 10, 2
        params = UteParameters.minimal(n=n, alpha=f)
        for seed in range(3):
            result = run_consensus(
                UteAlgorithm(params),
                generators.skewed(n, seed=seed),
                StaticByzantineAdversary(byzantine=range(f), value_domain=(0, 1), seed=seed),
                max_rounds=60,
            )
            assert result.safe
            assert result.termination

    def test_safety_only_at_extreme_alpha_under_permanent_corruption(self):
        """At alpha close to n/2, permanent corruption leaves termination out of
        reach (no clean phase ever occurs) but safety still holds."""
        n, f = 10, 4
        params = UteParameters.minimal(n=n, alpha=f)
        for seed in range(3):
            result = run_consensus(
                UteAlgorithm(params),
                generators.skewed(n, seed=seed),
                StaticByzantineAdversary(byzantine=range(f), value_domain=(0, 1), seed=seed),
                max_rounds=40,
            )
            assert result.safe


class TestTheorem2Liveness:
    def test_termination_exactly_after_good_phase_window(self):
        n, alpha = 8, 2
        params = UteParameters.minimal(n=n, alpha=alpha)
        algorithm = UteAlgorithm(params)
        liveness = algorithm.liveness_predicate()
        result = run_consensus(
            UteAlgorithm(params),
            generators.split(n),
            _theorem2_adversary(params, seed=9, period=3),
            max_rounds=80,
        )
        assert result.all_satisfied
        assert liveness.holds(result.collection)

    def test_fault_free_unanimous_decides_in_one_phase(self):
        n = 8
        params = UteParameters.minimal(n=n, alpha=2)
        result = run_consensus(
            UteAlgorithm(params), generators.unanimous(n, value=1), ReliableAdversary(), max_rounds=10
        )
        assert result.all_satisfied
        assert result.last_decision_round == 2

    def test_higher_alpha_than_ate_is_supported(self):
        """U tolerates alpha up to just below n/2 — e.g. alpha=4 at n=9, where A is limited to 2."""
        n, alpha = 9, 4
        params = UteParameters.minimal(n=n, alpha=alpha)
        result = run_consensus(
            UteAlgorithm(params),
            generators.split(n),
            _theorem2_adversary(params, seed=2),
            max_rounds=80,
        )
        assert result.safe
        assert result.termination


class TestTheorem2Boundary:
    def test_agreement_can_break_beyond_the_predicates(self):
        """With corruption above the tolerated budget and too-small thresholds,
        the vote mechanism can be split — demonstrating the conditions matter."""
        n = 6
        params = UteParameters(n=n, alpha=0, threshold=2, enough=2)
        broken = 0
        for seed in range(8):
            result = run_consensus(
                UteAlgorithm(params),
                generators.split(n),
                SplitVoteAdversary(budget_per_receiver=3, value_a=0, value_b=1, seed=seed),
                max_rounds=20,
            )
            if not result.safe:
                broken += 1
        assert broken > 0

    def test_same_attack_is_harmless_with_theorem_2_thresholds(self):
        n = 6
        params = UteParameters.minimal(n=n, alpha=2)
        for seed in range(6):
            result = run_consensus(
                UteAlgorithm(params),
                generators.split(n),
                SplitVoteAdversary(budget_per_receiver=2, value_a=0, value_b=1, seed=seed),
                max_rounds=20,
            )
            assert result.safe

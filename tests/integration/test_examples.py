"""Smoke tests: every shipped example runs to completion and reports success."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize("example", EXAMPLES, ids=[e.stem for e in EXAMPLES])
def test_example_runs(example):
    completed = subprocess.run(
        [sys.executable, str(example)],
        capture_output=True,
        text=True,
        timeout=300,
        cwd=str(EXAMPLES_DIR.parent),
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    assert completed.stdout.strip(), "examples are expected to print their findings"


def test_expected_examples_are_present():
    names = {example.stem for example in EXAMPLES}
    assert {
        "quickstart",
        "block_faults_santoro_widmayer",
        "byzantine_vs_dynamic_faults",
        "threshold_explorer",
        "async_transport_demo",
    } <= names


def test_quickstart_reports_consensus(capsys):
    """The quickstart's main() is importable and reports a satisfied run."""
    sys.path.insert(0, str(EXAMPLES_DIR))
    try:
        import quickstart  # type: ignore

        quickstart.main()
    finally:
        sys.path.pop(0)
    out = capsys.readouterr().out
    assert "consensus satisfied    : True" in out
    assert "counterexample to paper: False" in out

"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.algorithm == "ate"
        assert args.n == 9

    def test_experiment_parsing(self):
        args = build_parser().parse_args(["experiment", "E3", "--json", "out.json"])
        assert args.id == "E3" and args.json == "out.json"


class TestRunCommand:
    def test_run_reliable(self, capsys):
        code = main(["run", "--algorithm", "ate", "--n", "6", "--alpha", "0",
                     "--adversary", "reliable", "--workload", "split", "--max-rounds", "10"])
        assert code == 0
        out = capsys.readouterr().out
        assert "decided=6/6" in out

    def test_run_verbose_corruption(self, capsys):
        code = main(["run", "--algorithm", "ute", "--n", "8", "--alpha", "1",
                     "--adversary", "corruption", "--workload", "random",
                     "--max-rounds", "40", "--seed", "3", "--verbose"])
        assert code == 0
        out = capsys.readouterr().out
        assert "corruptions per round" in out

    def test_run_phase_king_byzantine(self, capsys):
        code = main(["run", "--algorithm", "phase-king", "--n", "9", "--f", "2",
                     "--adversary", "byzantine", "--workload", "split", "--max-rounds", "10"])
        assert code == 0

    def test_unknown_algorithm_rejected_by_parser(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--algorithm", "paxos"])


class TestExperimentCommand:
    def test_unknown_experiment_returns_error(self, capsys):
        code = main(["experiment", "E99"])
        assert code == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_e9_runs_and_writes_json(self, tmp_path, capsys):
        target = tmp_path / "e9.json"
        code = main(["experiment", "E9", "--json", str(target)])
        assert code == 0
        assert "E9" in capsys.readouterr().out
        data = json.loads(target.read_text())
        assert data["experiment_id"] == "E9"
        assert data["rows"]


class TestTableCommand:
    def test_table_all(self, capsys):
        code = main(["table", "all", "--n", "12", "--ns", "8", "12"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "Related-work comparison" in out
        assert "Resilience across system sizes" in out

    def test_table_table1_only(self, capsys):
        code = main(["table", "table1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "A_{T,E}" in out and "Resilience" not in out


class TestCampaignCommand:
    def test_campaign_parsing(self):
        args = build_parser().parse_args(
            ["campaign", "E1", "--jobs", "4", "--no-cache", "--runs", "3"]
        )
        assert args.ids == ["E1"] and args.jobs == 4 and args.no_cache and args.runs == 3

    def test_campaign_runs_e1_and_prints_stats(self, tmp_path, capsys):
        code = main([
            "campaign", "E1", "--runs", "2", "--n", "6", "--max-rounds", "20",
            "--cache-dir", str(tmp_path / "cache"),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "E1" in out and "runner[E1]" in out and "cache_misses" in out

    def test_campaign_second_invocation_hits_cache(self, tmp_path, capsys):
        argv = [
            "campaign", "E1", "--runs", "2", "--n", "6", "--max-rounds", "20",
            "--cache-dir", str(tmp_path / "cache"),
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert "executed=0" in second and "cache_hits=" in second
        # Everything except the runner stats line is byte-identical.
        strip = lambda text: [  # noqa: E731
            line for line in text.splitlines() if not line.startswith("runner[")
        ]
        assert strip(first) == strip(second)

    def test_campaign_requires_ids_or_spec(self, capsys):
        assert main(["campaign"]) == 2
        assert "experiment ids" in capsys.readouterr().err

    def test_campaign_spec_file(self, tmp_path, capsys):
        import json as json_module

        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json_module.dumps({
            "campaign_id": "cli-spec-test",
            "algorithms": [{"name": "ate", "params": {"alpha": 1}}],
            "adversaries": [
                {"name": "corruption-good-rounds", "params": {"alpha": 1, "period": 4}}
            ],
            "predicates": [{"name": "alpha-safe", "params": {"alpha": 1}}],
            "ns": [6],
            "runs": 2,
            "base_seed": 3,
            "max_rounds": 20,
        }))
        report_path = tmp_path / "report.json"
        code = main([
            "campaign", "--spec", str(spec_path), "--no-cache", "--json", str(report_path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "cli-spec-test" in out
        data = json_module.loads(report_path.read_text())
        assert data["rows"] and data["rows"][0]["agreement_rate"] == 1.0

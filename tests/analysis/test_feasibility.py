"""Tests for the threshold feasibility analysis (Sections 3.3 and 4.3)."""

from fractions import Fraction

from repro.analysis.feasibility import (
    ate_feasible,
    ate_integer_solutions,
    ate_max_alpha,
    ate_symmetric_parameters,
    ate_threshold_region,
    resilience_row,
    resilience_table,
    ute_feasible,
    ute_integer_solutions,
    ute_max_alpha,
    ute_minimal_parameters,
)


class TestAteFeasibility:
    def test_quarter_bound(self):
        assert ate_feasible(8, 1)
        assert ate_feasible(9, 2)
        assert not ate_feasible(8, 2)   # 2 == n/4
        assert not ate_feasible(9, 3)   # 3 > 9/4
        assert ate_feasible(100, 24)
        assert not ate_feasible(100, 25)

    def test_max_alpha_values(self):
        assert ate_max_alpha(4) == 0
        assert ate_max_alpha(8) == 1
        assert ate_max_alpha(9) == 2
        assert ate_max_alpha(12) == 2
        assert ate_max_alpha(13) == 3
        assert ate_max_alpha(16) == 3
        assert ate_max_alpha(17) == 4

    def test_max_alpha_is_largest_feasible_integer(self):
        for n in range(4, 40):
            alpha = ate_max_alpha(n)
            assert ate_feasible(n, alpha)
            assert not ate_feasible(n, alpha + 1)

    def test_symmetric_parameters_match_proposition_4(self):
        params = ate_symmetric_parameters(10, 2)
        assert params.threshold == Fraction(2, 3) * 14
        assert params.enough == params.threshold

    def test_threshold_region(self):
        region = ate_threshold_region(12, 2)
        assert region is not None
        low, high = region
        assert low == Fraction(12, 2) + 4   # n/2 + 2*alpha dominates here
        assert high == 12
        assert ate_threshold_region(8, 2) is None

    def test_integer_solutions_exist_exactly_when_feasible(self):
        for n in (8, 9, 12, 13):
            for alpha in range(0, n // 2):
                solutions = ate_integer_solutions(n, alpha)
                if solutions:
                    assert ate_feasible(n, alpha)
                if not ate_feasible(n, alpha):
                    assert solutions == []

    def test_integer_solutions_satisfy_theorem(self):
        from repro.core.parameters import AteParameters

        for threshold, enough in ate_integer_solutions(12, 2):
            params = AteParameters(n=12, alpha=2, threshold=threshold, enough=enough)
            assert params.satisfies_theorem_1


class TestUteFeasibility:
    def test_half_bound(self):
        assert ute_feasible(8, 3)
        assert not ute_feasible(8, 4)
        assert ute_feasible(9, 4)
        assert not ute_feasible(9, 5)

    def test_max_alpha_values(self):
        assert ute_max_alpha(4) == 1
        assert ute_max_alpha(8) == 3
        assert ute_max_alpha(9) == 4
        assert ute_max_alpha(10) == 4
        assert ute_max_alpha(11) == 5

    def test_max_alpha_is_largest_feasible_integer(self):
        for n in range(3, 40):
            alpha = ute_max_alpha(n)
            assert ute_feasible(n, alpha)
            assert not ute_feasible(n, alpha + 1)

    def test_ute_tolerates_roughly_twice_ate(self):
        for n in range(8, 60):
            assert ute_max_alpha(n) >= 2 * ate_max_alpha(n) - 1

    def test_minimal_parameters(self):
        params = ute_minimal_parameters(9, 2)
        assert params.threshold == Fraction(9, 2) + 2

    def test_integer_solutions(self):
        assert ute_integer_solutions(9, 3)          # feasible with integer thresholds (T = E = 8)
        # At the extreme alpha = 4 the real-valued region (8.5 <= E < 9) contains
        # no integer, so a deployment needs fractional (comparison-only) thresholds.
        assert ute_integer_solutions(9, 4) == []
        assert ute_integer_solutions(9, 5) == []    # infeasible outright
        from repro.core.parameters import UteParameters

        for threshold, enough in ute_integer_solutions(9, 3):
            assert UteParameters(n=9, alpha=3, threshold=threshold, enough=enough).satisfies_theorem_2


class TestResilienceRows:
    def test_row_fields_are_consistent(self):
        row = resilience_row(12)
        assert row.n == 12
        assert row.ate_max_alpha == 2
        assert row.ute_max_alpha == 5
        assert row.santoro_widmayer_per_round == 6
        assert row.ate_max_corrupted_receptions_per_round == 2 * 12
        assert row.ute_max_corrupted_receptions_per_round == 5 * 12
        assert row.byzantine_static_max_f == 3
        assert row.fast_byzantine_max_f == 2

    def test_table_covers_requested_sizes(self):
        rows = resilience_table(iter([4, 8, 16]))
        assert [row.n for row in rows] == [4, 8, 16]

    def test_paper_headline_comparison(self):
        """The paper's headline: per-round corruption capacity far exceeds floor(n/2)."""
        for n in (20, 40, 80):
            row = resilience_row(n)
            assert row.ate_max_corrupted_receptions_per_round > row.santoro_widmayer_per_round
            assert row.ute_max_corrupted_receptions_per_round > row.ate_max_corrupted_receptions_per_round

"""Tests for the lower-bound analysis (Section 5.1)."""

from fractions import Fraction

import pytest

from repro.analysis.bounds import (
    ate_lamport_attainment,
    byzantine_resilience,
    corruption_capacity,
    fast_decision_comparison,
    lamport_bound_holds,
    martin_alvisi_max_faulty,
    martin_alvisi_min_processes,
    santoro_widmayer_bound,
    schmid_value_fault_bound,
    ute_lamport_attainment,
)


class TestClassicalBounds:
    def test_santoro_widmayer(self):
        assert santoro_widmayer_bound(10) == 5
        assert santoro_widmayer_bound(7) == 3

    def test_schmid_bound(self):
        assert schmid_value_fault_bound(8) == 2
        assert schmid_value_fault_bound(10) == Fraction(10, 4)

    def test_martin_alvisi(self):
        assert martin_alvisi_min_processes(0) == 1
        assert martin_alvisi_min_processes(1) == 6
        assert martin_alvisi_min_processes(2) == 11
        assert martin_alvisi_max_faulty(5) == 0
        assert martin_alvisi_max_faulty(6) == 1
        assert martin_alvisi_max_faulty(11) == 2
        with pytest.raises(ValueError):
            martin_alvisi_min_processes(-1)

    def test_byzantine_resilience(self):
        assert byzantine_resilience(3) == 0
        assert byzantine_resilience(4) == 1
        assert byzantine_resilience(10) == 3

    def test_lamport_bound(self):
        assert lamport_bound_holds(4, q=0, f=1, m=1)       # 4 > 0 + 1 + 2
        assert not lamport_bound_holds(3, q=0, f=1, m=1)   # 3 > 3 is false


class TestLamportAttainment:
    def test_ate_attains_bound_tightly(self):
        for n in (5, 9, 13, 21):
            attainment = ate_lamport_attainment(n)
            assert attainment.bound_satisfied
            assert attainment.tight
            assert attainment.m == Fraction(n - 1, 4)
            assert attainment.q == attainment.m
            assert attainment.f == 0

    def test_ute_attains_bound_tightly(self):
        for n in (5, 9, 13, 21):
            attainment = ute_lamport_attainment(n)
            assert attainment.bound_satisfied
            assert attainment.tight
            assert attainment.m == Fraction(n - 1, 2)
            assert attainment.q == 0

    def test_ute_tolerates_double_the_corruption_of_ate(self):
        for n in (9, 17, 33):
            assert ute_lamport_attainment(n).m == 2 * ate_lamport_attainment(n).m


class TestCorruptionCapacity:
    def test_headline_numbers(self):
        capacity = corruption_capacity(10)
        assert capacity.ate_per_receiver == Fraction(10, 4)
        assert capacity.ute_per_receiver == 5
        assert capacity.ate_total_per_round == 25
        assert capacity.ute_total_per_round == 50
        assert capacity.santoro_widmayer_total_per_round == 5

    def test_capacity_exceeds_sw_bound_for_all_n(self):
        for n in range(5, 60):
            capacity = corruption_capacity(n)
            assert capacity.ate_total_per_round > capacity.santoro_widmayer_total_per_round
            assert capacity.ute_total_per_round == 2 * capacity.ate_total_per_round


class TestFastDecisionComparison:
    def test_fields(self):
        comparison = fast_decision_comparison(9)
        assert comparison["martin_alvisi_max_static_faulty"] == 1
        assert comparison["ate_integer_alpha"] == 2
        assert comparison["ate_fast_decision_rounds"] == 2
        assert comparison["ate_unanimous_decision_rounds"] == 1
        assert comparison["phase_king_decision_rounds"] == 2 * (byzantine_resilience(9) + 1)

    def test_ate_tolerates_more_than_martin_alvisi(self):
        """The paper: (n-1)/4 per-round corrupting senders versus n/5 static ones."""
        for n in (9, 13, 21, 41):
            comparison = fast_decision_comparison(n)
            assert comparison["ate_integer_alpha"] >= comparison["martin_alvisi_max_static_faulty"]

"""Tests for the Table 1 reproduction and rendering helpers."""

from repro.analysis.comparison import related_work_rows, render_table, table1_rows
from repro.core.parameters import AteParameters, UteParameters


class TestTable1:
    def test_two_rows(self):
        rows = table1_rows()
        assert len(rows) == 2
        assert rows[0].algorithm == "A_{T,E}"
        assert rows[1].algorithm == "U_{T,E,alpha}"

    def test_row_texts_mention_key_predicates(self):
        ate_row, ute_row = table1_rows()
        assert "AHO" in ate_row.safety_predicate
        assert "P^{A,live}" in ate_row.liveness_predicate
        assert "alpha < n/4" in ate_row.max_alpha_description
        assert "P^{U,safe}" in ute_row.safety_predicate
        assert "alpha < n/2" in ute_row.max_alpha_description

    def test_condition_checks_are_executable(self):
        ate_row, ute_row = table1_rows()
        good_ate = AteParameters.symmetric(n=9, alpha=1)
        assert ate_row.condition_check(9, 1, float(good_ate.threshold), float(good_ate.enough))
        assert not ate_row.condition_check(9, 1, 2, 2)
        good_ute = UteParameters.minimal(n=9, alpha=2)
        assert ute_row.condition_check(9, 2, float(good_ute.threshold), float(good_ute.enough))
        assert not ute_row.condition_check(9, 2, 3, 3)

    def test_as_dict(self):
        data = table1_rows()[0].as_dict()
        assert set(data) == {
            "algorithm",
            "safety_predicate",
            "liveness_predicate",
            "conditions",
            "max_alpha",
        }


class TestRelatedWork:
    def test_rows_cover_all_compared_approaches(self):
        rows = related_work_rows(12)
        approaches = " ".join(str(row["approach"]) for row in rows)
        assert "Santoro" in approaches
        assert "A_{T,E}" in approaches
        assert "U_{T,E,alpha}" in approaches
        assert "Martin-Alvisi" in approaches
        assert "Byzantine" in approaches

    def test_bounds_are_consistent_with_analysis(self):
        rows = {row["approach"]: row for row in related_work_rows(12)}
        assert rows["A_{T,E} (this paper)"]["bound"] == 2
        assert rows["U_{T,E,alpha} (this paper)"]["bound"] == 5
        assert rows["Martin-Alvisi fast Byzantine consensus"]["bound"] == 2


class TestRenderTable:
    def test_renders_columns_and_rows(self):
        text = render_table([{"a": 1, "b": "xy"}, {"a": 22, "b": "z"}])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "a" in lines[0] and "b" in lines[0]
        assert "22" in lines[3]

    def test_empty_table(self):
        assert render_table([]) == "(empty table)"

    def test_explicit_column_selection(self):
        text = render_table([{"a": 1, "b": 2}], columns=["b"])
        assert "a" not in text.splitlines()[0]

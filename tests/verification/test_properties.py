"""Tests for batch property aggregation."""

from repro.adversary import RandomCorruptionAdversary, RandomOmissionAdversary, ReliableAdversary
from repro.algorithms import AteAlgorithm
from repro.core.predicates import AlphaSafePredicate
from repro.simulation.engine import run_consensus
from repro.verification.properties import aggregate, safety_counterexamples
from repro.workloads import generators


def _runs(n=6, alpha=0, count=5, adversary_factory=None, max_rounds=15):
    adversary_factory = adversary_factory or (lambda index: ReliableAdversary())
    return [
        run_consensus(
            AteAlgorithm.symmetric(n=n, alpha=alpha),
            generators.uniform_random(n, seed=index),
            adversary_factory(index),
            max_rounds=max_rounds,
        )
        for index in range(count)
    ]


class TestAggregate:
    def test_perfect_batch(self):
        report = aggregate(_runs())
        assert report.total == 5
        assert report.agreement_rate == 1.0
        assert report.integrity_rate == 1.0
        assert report.termination_rate == 1.0
        assert report.all_safe and report.all_live
        assert report.mean_decision_round is not None
        assert report.max_decision_round <= 2
        assert "runs=5" in report.summary()

    def test_with_predicate_counts_holds_and_counterexamples(self):
        from repro.adversary import PeriodicGoodRoundAdversary

        results = _runs(
            alpha=1,
            adversary_factory=lambda i: PeriodicGoodRoundAdversary(
                inner=RandomCorruptionAdversary(alpha=1, seed=i), period=3
            ),
            max_rounds=40,
        )
        report = aggregate(results, predicate=AlphaSafePredicate(1))
        assert report.predicate_held == report.total
        assert report.counterexamples == 0

    def test_non_terminating_batch(self):
        results = _runs(
            adversary_factory=lambda i: RandomOmissionAdversary(drop_probability=1.0, seed=i),
            max_rounds=5,
        )
        report = aggregate(results)
        assert report.termination_rate == 0.0
        assert report.all_safe
        assert not report.all_live
        assert report.mean_decision_round is None
        assert report.violations  # termination violations recorded

    def test_as_dict(self):
        data = aggregate(_runs(count=2)).as_dict()
        assert data["total"] == 2
        assert data["agreement_rate"] == 1.0

    def test_empty_batch(self):
        report = aggregate([])
        assert report.total == 0
        assert report.agreement_rate == 0.0


class TestSafetyCounterexamples:
    def test_none_for_in_range_runs(self):
        results = _runs(alpha=1, adversary_factory=lambda i: RandomCorruptionAdversary(alpha=1, seed=i))
        assert safety_counterexamples(results, AlphaSafePredicate(1)) == []

    def test_excludes_runs_where_predicate_fails(self):
        # Corruption above the predicate's bound: whatever happens, these runs
        # are not counterexamples to the alpha=0 claim.
        results = _runs(alpha=0, adversary_factory=lambda i: RandomCorruptionAdversary(alpha=2, seed=i))
        assert safety_counterexamples(results, AlphaSafePredicate(0)) == []

"""Tests for the bounded exhaustive model checker."""

import pytest

from repro.core.parameters import AteParameters
from repro.algorithms import AteAlgorithm
from repro.verification.model_check import (
    ModelCheckConfig,
    PlannedAdversary,
    enumerate_fault_plans,
    model_check,
)

# Exhaustive sweeps: CI's fast matrix legs deselect these with -m 'not slow'.
pytestmark = pytest.mark.slow


class TestPlannedAdversary:
    def test_applies_plan_and_defaults_to_reliable(self):
        plan = {0: {1: ("corrupt", 9), 2: ("drop", None)}}
        adversary = PlannedAdversary([plan])
        intended = {s: {r: 0 for r in range(3)} for s in range(3)}
        received = adversary.deliver_round(1, intended)
        assert received[0][1] == 9
        assert 2 not in received[0]
        assert received[1] == {0: 0, 1: 0, 2: 0}
        # Beyond the plan, everything is delivered reliably.
        later = adversary.deliver_round(2, intended)
        assert all(len(inbox) == 3 for inbox in later.values())


class TestEnumeration:
    def test_zero_horizon_has_single_empty_plan(self):
        config = ModelCheckConfig(n=3, horizon=0)
        assert list(enumerate_fault_plans(config)) == [()]

    def test_plan_count_grows_with_budget(self):
        small = ModelCheckConfig(
            n=2, horizon=1, max_corruptions_per_receiver=1, corruption_values=(1,)
        )
        large = ModelCheckConfig(
            n=2, horizon=1, max_corruptions_per_receiver=1, corruption_values=(1, 2)
        )
        assert len(list(enumerate_fault_plans(small))) < len(list(enumerate_fault_plans(large)))

    def test_omission_budget_enumerated(self):
        config = ModelCheckConfig(
            n=2,
            horizon=1,
            max_corruptions_per_receiver=0,
            max_omissions_per_receiver=1,
            corruption_values=(),
        )
        plans = list(enumerate_fault_plans(config))
        # Each of the two receivers independently drops nothing or one of two
        # senders: 3 * 3 = 9 combinations.
        assert len(plans) == 9

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ModelCheckConfig(n=0)
        with pytest.raises(ValueError):
            ModelCheckConfig(n=2, horizon=-1)
        with pytest.raises(ValueError):
            ModelCheckConfig(n=2, max_corruptions_per_receiver=-1)


class TestModelCheck:
    def test_in_range_parameters_are_safe_for_all_plans(self):
        """Exhaustive check: no alpha=1-compatible corruption of the first round
        breaks safety or (with a fault-free tail) termination of A_{T,E} at n=5."""
        n = 5
        params = AteParameters.symmetric(n=n, alpha=1)
        config = ModelCheckConfig(
            n=n,
            horizon=1,
            max_corruptions_per_receiver=1,
            max_omissions_per_receiver=0,
            corruption_values=(1,),
            tail_rounds=4,
        )
        result = model_check(
            algorithm_factory=lambda: AteAlgorithm(params),
            initial_values={0: 0, 1: 0, 2: 0, 3: 1, 4: 1},
            config=config,
        )
        assert result.explored == 6 ** n  # (no-fault + 5 targets) per receiver
        assert result.safe, result.safety_violations[:1]
        # Tail rounds are fault-free, so every explored run terminates.
        assert result.live

    def test_unanimous_initial_values_preserve_integrity(self):
        n = 3
        params = AteParameters.symmetric(n=n, alpha=0)
        config = ModelCheckConfig(
            n=n,
            horizon=1,
            max_corruptions_per_receiver=0,
            max_omissions_per_receiver=1,
            corruption_values=(),
            tail_rounds=4,
        )
        result = model_check(
            algorithm_factory=lambda: AteAlgorithm(params),
            initial_values={p: 7 for p in range(n)},
            config=config,
        )
        assert result.safe and result.live

    def test_out_of_range_thresholds_are_refuted(self):
        """With thresholds far below Theorem 1's requirement the checker finds violations."""
        n = 4
        # E = 2 < n/2 + alpha and T = 2: a single corrupted reception can
        # push two processes to decide differently.
        params = AteParameters(n=n, alpha=1, threshold=2, enough=2)
        config = ModelCheckConfig(
            n=n,
            horizon=1,
            max_corruptions_per_receiver=1,
            max_omissions_per_receiver=0,
            corruption_values=(0, 1),
            tail_rounds=3,
        )
        result = model_check(
            algorithm_factory=lambda: AteAlgorithm(params),
            initial_values={0: 0, 1: 0, 2: 1, 3: 1},
            config=config,
        )
        assert not result.safe

    def test_max_runs_truncation(self):
        n = 3
        params = AteParameters.symmetric(n=n, alpha=1)
        config = ModelCheckConfig(
            n=n,
            horizon=1,
            max_corruptions_per_receiver=1,
            corruption_values=(0, 1),
            max_runs=10,
        )
        result = model_check(
            algorithm_factory=lambda: AteAlgorithm(params),
            initial_values={0: 0, 1: 1, 2: 0},
            config=config,
        )
        assert result.explored == 10
        assert result.truncated
        assert "10" in result.summary()

"""Tests for the lemma-level invariant monitors."""

import pytest

from repro.adversary import (
    RandomCorruptionAdversary,
    ReliableAdversary,
    UnboundedCorruptionAdversary,
)
from repro.algorithms import AteAlgorithm, UteAlgorithm
from repro.simulation.engine import SimulationConfig, run_algorithm
from repro.verification.invariants import (
    AgreementMonitor,
    DecisionLockMonitor,
    IntegrityMonitor,
    InvariantViolation,
    IrrevocabilityMonitor,
    Lemma1Monitor,
    SingleTrueVoteMonitor,
    UniqueDecisionPerRoundMonitor,
    standard_monitors,
)
from repro.workloads import generators


def run_with_monitors(algorithm, initial_values, adversary, monitors, max_rounds=30):
    config = SimulationConfig(max_rounds=max_rounds, record_states=True)
    return run_algorithm(algorithm, initial_values, adversary, config=config, observers=monitors)


class TestLemma1Monitor:
    def test_holds_for_any_adversary(self):
        # Lemma 1 is a fact about the model, so even an unbounded corruption
        # adversary cannot violate it.
        n = 6
        monitor = Lemma1Monitor()
        run_with_monitors(
            AteAlgorithm.symmetric(n=n, alpha=0),
            generators.split(n),
            UnboundedCorruptionAdversary(corruption_probability=0.6, seed=1),
            [monitor],
            max_rounds=10,
        )
        assert monitor.ok

    def test_detects_impossible_reception_vector(self):
        # Construct a synthetic round where a value is received more often
        # than |Q(v)| + |AHO| would allow — only possible if bookkeeping is
        # broken, which is exactly what the monitor guards against.
        from repro.core.heardof import ReceptionVector, RoundRecord

        monitor = Lemma1Monitor()
        rv = ReceptionVector(receiver=0, received={0: 1, 1: 1, 2: 1}, intended={0: 1, 1: 0, 2: 0})
        # AHO = {1, 2}, Q(1) = 1, R(1) = 3 <= 1 + 2 : still fine.
        monitor.on_round(RoundRecord(round_num=1, receptions={0: rv}), {})
        assert monitor.ok
        # Now shrink AHO artificially by making intended match, but received
        # over-count a value that nobody intended: impossible in the engine.
        broken = ReceptionVector(receiver=0, received={0: 5, 1: 5}, intended={0: 5, 1: 5, 2: 5})
        # R(5) = 2 <= Q(5) + 0 = 3: fine -> monitor stays ok.
        monitor.on_round(RoundRecord(round_num=2, receptions={0: broken}), {})
        assert monitor.ok


class TestConsensusMonitors:
    def test_all_green_on_fault_free_run(self):
        n = 6
        initial = generators.split(n)
        monitors = standard_monitors(initial)
        run_with_monitors(
            AteAlgorithm.symmetric(n=n, alpha=0), initial, ReliableAdversary(), monitors
        )
        assert all(monitor.ok for monitor in monitors)

    def test_all_green_under_alpha_bounded_corruption(self):
        n = 9
        initial = generators.uniform_random(n, seed=2)
        monitors = standard_monitors(initial)
        run_with_monitors(
            AteAlgorithm.symmetric(n=n, alpha=2),
            initial,
            RandomCorruptionAdversary(alpha=2, value_domain=(0, 1), seed=2),
            monitors,
            max_rounds=40,
        )
        assert all(monitor.ok for monitor in monitors)

    def test_decision_lock_monitor_on_ate(self):
        n = 9
        monitor = DecisionLockMonitor()
        run_with_monitors(
            AteAlgorithm.symmetric(n=n, alpha=1),
            generators.uniform_random(n, seed=3),
            RandomCorruptionAdversary(alpha=1, value_domain=(0, 1), seed=3),
            [monitor],
            max_rounds=40,
        )
        assert monitor.ok

    def test_single_true_vote_monitor_on_ute(self):
        n = 9
        monitor = SingleTrueVoteMonitor()
        run_with_monitors(
            UteAlgorithm.minimal(n=n, alpha=2),
            generators.uniform_random(n, seed=4),
            RandomCorruptionAdversary(alpha=2, value_domain=(0, 1), seed=4),
            [monitor],
            max_rounds=40,
        )
        assert monitor.ok


class TestMonitorMechanics:
    def test_agreement_monitor_flags_disagreement(self):
        monitor = AgreementMonitor()

        class FakeProc:
            def __init__(self, decided, decision):
                self.decided = decided
                self.decision = decision

        from repro.core.heardof import RoundRecord

        record = RoundRecord(round_num=1, receptions={})
        monitor.on_round(record, {0: FakeProc(True, "a"), 1: FakeProc(True, "b")})
        assert not monitor.ok
        assert "decided" in monitor.violations[0]

    def test_unique_decision_per_round_flags_conflict(self):
        monitor = UniqueDecisionPerRoundMonitor()

        class FakeProc:
            def __init__(self, decided, decision):
                self.decided = decided
                self.decision = decision

        from repro.core.heardof import RoundRecord

        record = RoundRecord(round_num=3, receptions={})
        monitor.on_round(record, {0: FakeProc(True, 0), 1: FakeProc(True, 1)})
        assert not monitor.ok

    def test_integrity_monitor_only_active_for_unanimous_start(self):
        from repro.core.heardof import RoundRecord

        class FakeProc:
            def __init__(self, decided, decision):
                self.decided = decided
                self.decision = decision

        mixed = IntegrityMonitor({0: 0, 1: 1})
        mixed.on_round(RoundRecord(round_num=1, receptions={}), {0: FakeProc(True, 7)})
        assert mixed.ok
        unanimous = IntegrityMonitor({0: 5, 1: 5})
        unanimous.on_round(RoundRecord(round_num=1, receptions={}), {0: FakeProc(True, 7)})
        assert not unanimous.ok

    def test_irrevocability_monitor_flags_changes(self):
        from repro.core.heardof import RoundRecord

        class MutableProc:
            def __init__(self):
                self.decided = True
                self.decision = 1

        monitor = IrrevocabilityMonitor()
        proc = MutableProc()
        monitor.on_round(RoundRecord(round_num=1, receptions={}), {0: proc})
        proc.decision = 2
        monitor.on_round(RoundRecord(round_num=2, receptions={}), {0: proc})
        assert not monitor.ok

    def test_raise_on_violation_mode(self):
        from repro.core.heardof import RoundRecord

        class FakeProc:
            def __init__(self, decision):
                self.decided = True
                self.decision = decision

        monitor = AgreementMonitor(raise_on_violation=True)
        with pytest.raises(InvariantViolation):
            monitor.on_round(
                RoundRecord(round_num=1, receptions={}),
                {0: FakeProc("a"), 1: FakeProc("b")},
            )

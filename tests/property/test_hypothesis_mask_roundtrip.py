"""Property tests: the bitmask reception representation is lossless.

The fast backend stores rounds as bitmasks
(:class:`repro.core.heardof.MaskReception` /
:class:`repro.core.heardof.MaskRoundRecord`); these properties assert
that arbitrary reception vectors and broadcast rounds survive the
mask round-trip bit-for-bit, and that every derived set computed from
masks equals its matrix-path counterpart.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.heardof import (
    MaskReception,
    MaskRoundRecord,
    ReceptionVector,
    RoundRecord,
    ids_from_mask,
    mask_from_ids,
)

# Exhaustive sweeps: CI's fast matrix legs deselect these with -m 'not slow'.
pytestmark = pytest.mark.slow

payloads = st.one_of(
    st.integers(min_value=-3, max_value=3),
    st.sampled_from(["a", "b", "corrupted"]),
)


@st.composite
def broadcast_vectors(draw, n=None):
    """A reception vector of a broadcast round (ids 0..n-1)."""
    n = n if n is not None else draw(st.integers(min_value=1, max_value=8))
    receiver = draw(st.integers(min_value=0, max_value=n - 1))
    intended = {sender: draw(payloads) for sender in range(n)}
    received = {}
    for sender in range(n):
        fate = draw(st.sampled_from(["drop", "deliver", "corrupt"]))
        if fate == "deliver":
            received[sender] = intended[sender]
        elif fate == "corrupt":
            received[sender] = ("corrupt", intended[sender])  # always differs
    return n, ReceptionVector(receiver=receiver, received=received, intended=intended)


@given(data=broadcast_vectors())
@settings(max_examples=200, deadline=None)
def test_mask_reception_roundtrip_lossless(data):
    n, vector = data
    mask = MaskReception.from_vector(vector, n=n)
    back = mask.to_vector()
    assert back.receiver == vector.receiver
    assert dict(back.received) == dict(vector.received)
    assert dict(back.intended) == dict(vector.intended)
    # Derived sets agree between representations.
    assert mask.heard_of == vector.heard_of == back.heard_of
    assert mask.safe_heard_of == vector.safe_heard_of == back.safe_heard_of
    assert mask.altered_heard_of == vector.altered_heard_of == back.altered_heard_of


@st.composite
def broadcast_rounds(draw):
    n = draw(st.integers(min_value=1, max_value=6))
    sent = {sender: draw(payloads) for sender in range(n)}
    receptions = {}
    for receiver in range(n):
        received = {}
        for sender in range(n):
            fate = draw(st.sampled_from(["drop", "deliver", "corrupt"]))
            if fate == "deliver":
                received[sender] = sent[sender]
            elif fate == "corrupt":
                received[sender] = ("corrupt", sent[sender])
        receptions[receiver] = ReceptionVector(
            receiver=receiver, received=received, intended=dict(sent)
        )
    return n, RoundRecord(round_num=1, receptions=receptions)


@given(data=broadcast_rounds())
@settings(max_examples=200, deadline=None)
def test_mask_round_record_roundtrip_and_api_parity(data):
    n, record = data
    mask = MaskRoundRecord.from_round_record(record, n=n)
    back = mask.to_round_record()
    for receiver in range(n):
        assert dict(back.receptions[receiver].received) == dict(
            record.receptions[receiver].received
        )
        assert dict(back.receptions[receiver].intended) == dict(
            record.receptions[receiver].intended
        )
        assert mask.ho(receiver) == record.ho(receiver)
        assert mask.sho(receiver) == record.sho(receiver)
        assert mask.aho(receiver) == record.aho(receiver)
    assert mask.kernel() == record.kernel()
    assert mask.safe_kernel() == record.safe_kernel()
    assert mask.altered_span() == record.altered_span()
    assert mask.total_corruptions() == record.total_corruptions()
    assert mask.total_omissions() == record.total_omissions()
    assert mask.max_aho() == record.max_aho()


@given(ids=st.frozensets(st.integers(min_value=0, max_value=62), max_size=20))
@settings(max_examples=200, deadline=None)
def test_mask_ids_roundtrip(ids):
    assert ids_from_mask(mask_from_ids(ids)) == ids

"""Property-based tests relating predicates, adversaries and each other.

The key relationships asserted here come straight from Section 2.2:

* ``P^perm_alpha`` implies ``P_alpha``;
* ``P_benign`` is exactly ``P_0`` on corruption counts;
* adversaries advertised as alpha-bounded really produce alpha-safe runs;
* the AlphaCap combinator turns *any* adversary into an alpha-safe one.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.adversary import (
    AlphaCapAdversary,
    RandomCorruptionAdversary,
    StaticByzantineAdversary,
    UnboundedCorruptionAdversary,
)
from repro.algorithms import AteAlgorithm
from repro.core.parameters import AteParameters
from repro.core.predicates import (
    AlphaSafePredicate,
    BenignPredicate,
    PermanentAlphaPredicate,
)
from repro.simulation.engine import run_consensus

import pytest

# Exhaustive sweeps: CI's fast matrix legs deselect these with -m 'not slow'.
pytestmark = pytest.mark.slow

SIM_SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _collection(n, adversary, seed, rounds=6):
    """Run a simple algorithm just to generate a heard-of collection."""
    params = AteParameters.symmetric(n=n, alpha=0)
    result = run_consensus(
        AteAlgorithm(params),
        {pid: pid % 3 for pid in range(n)},
        adversary,
        max_rounds=rounds,
        min_rounds=rounds,
    )
    return result.collection


class TestPredicateImplications:
    @given(
        st.integers(min_value=4, max_value=10),
        st.integers(min_value=0, max_value=3),
        st.integers(min_value=0, max_value=10**6),
    )
    @SIM_SETTINGS
    def test_perm_alpha_implies_alpha(self, n, f, seed):
        f = min(f, n - 1)
        adversary = StaticByzantineAdversary(byzantine=range(f), value_domain=(0, 1), seed=seed)
        collection = _collection(n, adversary, seed)
        assert PermanentAlphaPredicate(f).holds(collection)
        assert AlphaSafePredicate(f).holds(collection)

    @given(
        st.integers(min_value=4, max_value=10),
        st.integers(min_value=0, max_value=10**6),
    )
    @SIM_SETTINGS
    def test_benign_equals_alpha_zero(self, n, seed):
        adversary = RandomCorruptionAdversary(alpha=0, drop_probability=0.3, seed=seed)
        collection = _collection(n, adversary, seed)
        assert BenignPredicate().holds(collection) == AlphaSafePredicate(0).holds(collection)
        assert BenignPredicate().holds(collection)

    @given(
        st.integers(min_value=4, max_value=10),
        st.integers(min_value=0, max_value=3),
        st.integers(min_value=0, max_value=10**6),
    )
    @SIM_SETTINGS
    def test_alpha_monotonicity(self, n, alpha, seed):
        adversary = RandomCorruptionAdversary(alpha=alpha, value_domain=(0, 1), seed=seed)
        collection = _collection(n, adversary, seed)
        assert AlphaSafePredicate(alpha).holds(collection)
        # Larger alpha is weaker: it must also hold.
        assert AlphaSafePredicate(alpha + 1).holds(collection)
        assert AlphaSafePredicate(n).holds(collection)


class TestAdversaryPredicateContracts:
    @given(
        st.integers(min_value=4, max_value=9),
        st.integers(min_value=0, max_value=3),
        st.floats(min_value=0.0, max_value=1.0),
        st.integers(min_value=0, max_value=10**6),
    )
    @SIM_SETTINGS
    def test_alpha_cap_enforces_predicate_for_any_inner(self, n, alpha, probability, seed):
        inner = UnboundedCorruptionAdversary(
            corruption_probability=probability, value_domain=(0, 1), seed=seed
        )
        adversary = AlphaCapAdversary(inner=inner, alpha=alpha)
        collection = _collection(n, adversary, seed)
        assert AlphaSafePredicate(alpha).holds(collection)

    @given(
        st.integers(min_value=4, max_value=9),
        st.integers(min_value=0, max_value=3),
        st.integers(min_value=0, max_value=10**6),
    )
    @SIM_SETTINGS
    def test_random_corruption_advertises_its_bound(self, n, alpha, seed):
        adversary = RandomCorruptionAdversary(alpha=alpha, value_domain=(0, 1), seed=seed)
        collection = _collection(n, adversary, seed)
        assert AlphaSafePredicate(alpha).holds(collection)

"""Property-based end-to-end tests: randomly generated P_alpha-compatible
environments never break the safety of correctly parameterised machines.

These are the "adversarial fuzzing" counterparts of the proofs: hypothesis
generates system sizes, alpha values, initial configurations and fault
schedules; the machines' safety clauses must hold whenever the relevant
predicate holds (which the generated adversaries guarantee by construction).
Run counts are kept moderate because every example is a full simulation.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.adversary import (
    AlphaCapAdversary,
    RandomCorruptionAdversary,
    RandomOmissionAdversary,
    RotatingSenderCorruptionAdversary,
    UnboundedCorruptionAdversary,
)
from repro.algorithms import AteAlgorithm, UteAlgorithm
from repro.analysis.feasibility import ate_max_alpha, ute_max_alpha
from repro.core.parameters import AteParameters, UteParameters
from repro.core.predicates import AlphaSafePredicate
from repro.simulation.engine import run_consensus

import pytest

# Exhaustive sweeps: CI's fast matrix legs deselect these with -m 'not slow'.
pytestmark = pytest.mark.slow

SIM_SETTINGS = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def ate_configurations(draw):
    n = draw(st.integers(min_value=5, max_value=12))
    alpha = draw(st.integers(min_value=0, max_value=max(ate_max_alpha(n), 0)))
    initial_values = {pid: draw(st.integers(min_value=0, max_value=2)) for pid in range(n)}
    seed = draw(st.integers(min_value=0, max_value=10**6))
    return n, alpha, initial_values, seed


@st.composite
def ute_configurations(draw):
    n = draw(st.integers(min_value=5, max_value=11))
    alpha = draw(st.integers(min_value=0, max_value=max(ute_max_alpha(n) - 1, 0)))
    initial_values = {pid: draw(st.integers(min_value=0, max_value=2)) for pid in range(n)}
    seed = draw(st.integers(min_value=0, max_value=10**6))
    return n, alpha, initial_values, seed


class TestAteSafetyProperties:
    @given(ate_configurations())
    @SIM_SETTINGS
    def test_safety_under_random_alpha_bounded_corruption(self, configuration):
        n, alpha, initial_values, seed = configuration
        params = AteParameters.symmetric(n=n, alpha=alpha)
        result = run_consensus(
            AteAlgorithm(params),
            initial_values,
            RandomCorruptionAdversary(alpha=alpha, value_domain=(0, 1, 2), seed=seed),
            max_rounds=25,
        )
        assert result.check_predicate(AlphaSafePredicate(alpha))
        assert result.safe
        assert result.validity or not result.decision_values

    @given(ate_configurations())
    @SIM_SETTINGS
    def test_safety_under_capped_unbounded_corruption(self, configuration):
        """An arbitrary aggressive adversary capped to P_alpha is still harmless."""
        n, alpha, initial_values, seed = configuration
        params = AteParameters.symmetric(n=n, alpha=alpha)
        adversary = AlphaCapAdversary(
            inner=UnboundedCorruptionAdversary(corruption_probability=0.5, value_domain=(0, 1, 2), seed=seed),
            alpha=alpha,
        )
        result = run_consensus(AteAlgorithm(params), initial_values, adversary, max_rounds=25)
        assert result.check_predicate(AlphaSafePredicate(alpha))
        assert result.safe

    @given(ate_configurations(), st.floats(min_value=0.0, max_value=1.0))
    @SIM_SETTINGS
    def test_safety_under_omissions_and_corruption(self, configuration, drop_probability):
        n, alpha, initial_values, seed = configuration
        params = AteParameters.symmetric(n=n, alpha=alpha)
        result = run_consensus(
            AteAlgorithm(params),
            initial_values,
            RandomCorruptionAdversary(
                alpha=alpha,
                drop_probability=drop_probability,
                value_domain=(0, 1, 2),
                seed=seed,
            ),
            max_rounds=20,
        )
        assert result.safe

    @given(ate_configurations())
    @SIM_SETTINGS
    def test_integrity_from_unanimous_configurations(self, configuration):
        n, alpha, _, seed = configuration
        params = AteParameters.symmetric(n=n, alpha=alpha)
        result = run_consensus(
            AteAlgorithm(params),
            {pid: 1 for pid in range(n)},
            RotatingSenderCorruptionAdversary(alpha=alpha, value_domain=(0, 1, 2), seed=seed),
            max_rounds=20,
        )
        assert result.integrity
        assert result.decision_values in ((), (1,))


def _ute_safety_adversary(params: UteParameters, alpha: int, seed: int):
    """P_alpha-bounded corruption constrained to also satisfy P^U,safe."""
    from repro.adversary import MinimumSafeDeliveryAdversary

    inner = RandomCorruptionAdversary(alpha=alpha, value_domain=(0, 1, 2), seed=seed)
    return MinimumSafeDeliveryAdversary.for_strict_bound(inner, float(params.u_safe_minimum))


class TestUteSafetyProperties:
    @given(ute_configurations())
    @SIM_SETTINGS
    def test_safety_under_full_safety_predicate(self, configuration):
        n, alpha, initial_values, seed = configuration
        params = UteParameters.minimal(n=n, alpha=alpha)
        algorithm = UteAlgorithm(params)
        result = run_consensus(
            algorithm,
            initial_values,
            _ute_safety_adversary(params, alpha, seed),
            max_rounds=30,
        )
        assert result.check_predicate(algorithm.safety_predicate())
        assert result.safe

    @given(ute_configurations())
    @SIM_SETTINGS
    def test_integrity_from_unanimous_configurations(self, configuration):
        n, alpha, _, seed = configuration
        params = UteParameters.minimal(n=n, alpha=alpha)
        result = run_consensus(
            UteAlgorithm(params),
            {pid: 2 for pid in range(n)},
            _ute_safety_adversary(params, alpha, seed),
            max_rounds=30,
        )
        assert result.integrity
        assert result.decision_values in ((), (2,))


class TestBaselineSafetyProperties:
    @given(
        st.integers(min_value=4, max_value=12),
        st.floats(min_value=0.0, max_value=1.0),
        st.integers(min_value=0, max_value=10**6),
    )
    @SIM_SETTINGS
    def test_one_third_rule_safe_under_any_omission_rate(self, n, drop_probability, seed):
        from repro.algorithms import OneThirdRuleAlgorithm

        result = run_consensus(
            OneThirdRuleAlgorithm(n),
            {pid: pid % 2 for pid in range(n)},
            RandomOmissionAdversary(drop_probability=drop_probability, seed=seed),
            max_rounds=15,
        )
        assert result.safe

"""Property-based tests for the heard-of set machinery (model-level invariants)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.heardof import (
    HeardOfCollection,
    ReceptionVector,
    RoundRecord,
    altered_heard_of,
    altered_span,
    kernel,
    safe_kernel,
)

import pytest

# Exhaustive sweeps: CI's fast matrix legs deselect these with -m 'not slow'.
pytestmark = pytest.mark.slow

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
process_ids = st.integers(min_value=0, max_value=7)
payloads = st.integers(min_value=0, max_value=3)


@st.composite
def reception_vectors(draw, n=None):
    n = n if n is not None else draw(st.integers(min_value=1, max_value=6))
    receiver = draw(st.integers(min_value=0, max_value=n - 1))
    intended = {sender: draw(payloads) for sender in range(n)}
    received = {}
    for sender in range(n):
        fate = draw(st.sampled_from(["drop", "deliver", "corrupt"]))
        if fate == "deliver":
            received[sender] = intended[sender]
        elif fate == "corrupt":
            received[sender] = intended[sender] + 10  # guaranteed different
    return ReceptionVector(receiver=receiver, received=received, intended=intended)


@st.composite
def round_records(draw, n=None, round_num=1):
    n = n if n is not None else draw(st.integers(min_value=1, max_value=5))
    receptions = {}
    for receiver in range(n):
        intended = {sender: draw(payloads) for sender in range(n)}
        received = {}
        for sender in range(n):
            fate = draw(st.sampled_from(["drop", "deliver", "corrupt"]))
            if fate == "deliver":
                received[sender] = intended[sender]
            elif fate == "corrupt":
                received[sender] = intended[sender] + 10
        receptions[receiver] = ReceptionVector(
            receiver=receiver, received=received, intended=intended
        )
    return RoundRecord(round_num=round_num, receptions=receptions)


# ----------------------------------------------------------------------
# Properties
# ----------------------------------------------------------------------
class TestReceptionVectorProperties:
    @given(reception_vectors())
    @settings(max_examples=200)
    def test_sho_subset_of_ho(self, rv):
        assert rv.safe_heard_of <= rv.heard_of

    @given(reception_vectors())
    @settings(max_examples=200)
    def test_aho_is_difference(self, rv):
        assert rv.altered_heard_of == rv.heard_of - rv.safe_heard_of
        assert rv.altered_heard_of == altered_heard_of(rv.heard_of, rv.safe_heard_of)

    @given(reception_vectors())
    @settings(max_examples=200)
    def test_counts_sum_to_heard_of_size(self, rv):
        total = sum(rv.count_of(value) for value in set(rv.received.values()))
        assert total == len(rv.heard_of)

    @given(reception_vectors())
    @settings(max_examples=200)
    def test_lemma_1_model_invariant(self, rv):
        """|R_p(v)| <= |Q_p(v)| + |AHO(p)| for every value v (Lemma 1)."""
        from collections import Counter

        intended_counts = Counter(rv.intended.values())
        received_counts = Counter(rv.received.values())
        aho = len(rv.altered_heard_of)
        for value, count in received_counts.items():
            assert count <= intended_counts.get(value, 0) + aho


class TestRoundRecordProperties:
    @given(round_records())
    @settings(max_examples=100)
    def test_kernel_is_subset_of_every_ho(self, record):
        k = record.kernel()
        for receiver in record.processes:
            assert k <= record.ho(receiver)

    @given(round_records())
    @settings(max_examples=100)
    def test_safe_kernel_subset_of_kernel(self, record):
        assert record.safe_kernel() <= record.kernel()

    @given(round_records())
    @settings(max_examples=100)
    def test_altered_span_is_union_of_ahos(self, record):
        expected = frozenset().union(*(record.aho(p) for p in record.processes)) if record.processes else frozenset()
        assert record.altered_span() == expected

    @given(round_records())
    @settings(max_examples=100)
    def test_corruptions_bounded_by_max_aho_times_n(self, record):
        n = len(record.processes)
        assert record.total_corruptions() <= record.max_aho() * n

    @given(round_records())
    @settings(max_examples=100)
    def test_free_function_consistency(self, record):
        assert kernel(record.ho_sets()) == record.kernel()
        assert safe_kernel(record.sho_sets()) == record.safe_kernel()
        assert altered_span(record.ho_sets(), record.sho_sets()) == record.altered_span()


class TestCollectionProperties:
    @given(st.lists(round_records(n=4), min_size=1, max_size=4))
    @settings(max_examples=50)
    def test_global_sets_monotone_under_extension(self, records):
        records = [
            RoundRecord(round_num=i + 1, receptions=r.receptions) for i, r in enumerate(records)
        ]
        collection = HeardOfCollection(4, records)
        prefix = HeardOfCollection(4, records[:1])
        # Kernels can only shrink, altered spans can only grow, as rounds are added.
        assert collection.global_kernel() <= prefix.global_kernel()
        assert collection.global_safe_kernel() <= prefix.global_safe_kernel()
        assert collection.global_altered_span() >= prefix.global_altered_span()

    @given(st.lists(round_records(n=3), min_size=1, max_size=3))
    @settings(max_examples=50)
    def test_benign_iff_no_corruption_counted(self, records):
        records = [
            RoundRecord(round_num=i + 1, receptions=r.receptions) for i, r in enumerate(records)
        ]
        collection = HeardOfCollection(3, records)
        assert collection.is_benign() == (collection.total_corruptions() == 0)
        assert collection.is_benign() == (collection.max_aho() == 0)

"""Property-based tests for the vote-counting helpers."""

from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.voting import (
    smallest_most_frequent,
    unique_value_above,
    value_counts,
    values_above,
    values_at_least,
)

import pytest

# Exhaustive sweeps: CI's fast matrix legs deselect these with -m 'not slow'.
pytestmark = pytest.mark.slow

value_lists = st.lists(st.integers(min_value=-5, max_value=5), max_size=30)


class TestVotingProperties:
    @given(value_lists)
    @settings(max_examples=200)
    def test_value_counts_matches_counter(self, values):
        assert value_counts(values) == Counter(values)

    @given(value_lists)
    @settings(max_examples=200)
    def test_smallest_most_frequent_is_a_maximiser(self, values):
        winner = smallest_most_frequent(values)
        if not values:
            assert winner is None
            return
        counts = Counter(values)
        best = max(counts.values())
        assert counts[winner] == best
        # And it is the smallest among the maximisers.
        assert winner == min(v for v, c in counts.items() if c == best)

    @given(value_lists, st.integers(min_value=0, max_value=10))
    @settings(max_examples=200)
    def test_values_above_strictness(self, values, threshold):
        winners = values_above(values, threshold)
        counts = Counter(values)
        for value, count in counts.items():
            assert (value in winners) == (count > threshold)

    @given(value_lists, st.integers(min_value=0, max_value=10))
    @settings(max_examples=200)
    def test_values_at_least_inclusiveness(self, values, minimum):
        winners = values_at_least(values, minimum)
        counts = Counter(values)
        for value, count in counts.items():
            assert (value in winners) == (count >= minimum)

    @given(value_lists)
    @settings(max_examples=200)
    def test_majority_threshold_yields_at_most_one_winner(self, values):
        """Lemma 2 / Lemma 7 in miniature: a strict-majority threshold cannot
        be cleared by two distinct values."""
        threshold = len(values) / 2
        winners = values_above(values, threshold)
        assert len(winners) <= 1
        unique = unique_value_above(values, threshold)
        if winners:
            assert unique in winners
        else:
            assert unique is None

"""Property tests: the packed-word mask representation is lossless.

The batch engine's packed tier carries masks as little-endian uint64
word arrays (bit ``s`` of a mask lives in word ``s >> 6`` at shift
``s & 63``).  These properties pin the layout from both directions:
arbitrary masks survive the int ↔ word-tuple round trip, arbitrary
dense bit matrices survive the :func:`pack_mask_rows` /
:func:`unpack_mask_rows` round trip, and the array path agrees bit for
bit with the pure-int path (so engine word rows and record mask ints
can never drift apart).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.heardof import (
    mask_to_words,
    words_per_mask,
    words_to_mask,
)

# Exhaustive sweeps: CI's fast matrix legs deselect these with -m 'not slow'.
pytestmark = pytest.mark.slow


@st.composite
def masks_with_width(draw):
    n = draw(st.integers(min_value=0, max_value=200))
    mask = draw(st.integers(min_value=0, max_value=(1 << n) - 1 if n else 0))
    return n, mask


@given(data=masks_with_width())
@settings(max_examples=200, deadline=None)
def test_mask_words_roundtrip(data):
    n, mask = data
    words = mask_to_words(mask, n)
    assert len(words) == words_per_mask(n)
    assert all(0 <= word < (1 << 64) for word in words)
    assert words_to_mask(words) == mask


@given(data=masks_with_width())
@settings(max_examples=200, deadline=None)
def test_word_layout_is_little_endian(data):
    n, mask = data
    for s in range(n):
        bit = (mask >> s) & 1
        word = mask_to_words(mask, n)[s >> 6]
        assert (word >> (s & 63)) & 1 == bit


@st.composite
def bit_matrices(draw):
    np = pytest.importorskip("numpy")
    rows = draw(st.integers(min_value=1, max_value=5))
    n = draw(st.integers(min_value=1, max_value=150))
    bits = draw(
        st.lists(
            st.lists(st.booleans(), min_size=n, max_size=n),
            min_size=rows,
            max_size=rows,
        )
    )
    return np.array(bits, dtype=bool)


@given(bits=bit_matrices())
@settings(max_examples=200, deadline=None)
def test_pack_unpack_roundtrip(bits):
    np = pytest.importorskip("numpy")
    from repro.core.heardof import pack_mask_rows, unpack_mask_rows

    n = bits.shape[-1]
    words = pack_mask_rows(bits)
    assert words.dtype == np.dtype("<u8")
    assert words.shape == bits.shape[:-1] + (words_per_mask(n),)
    assert (unpack_mask_rows(words, n) == bits).all()


@given(bits=bit_matrices())
@settings(max_examples=200, deadline=None)
def test_packed_words_agree_with_int_path(bits):
    pytest.importorskip("numpy")
    from repro.core.heardof import pack_mask_rows

    n = bits.shape[-1]
    words = pack_mask_rows(bits)
    for row_bits, row_words in zip(bits, words):
        mask = sum(1 << s for s, bit in enumerate(row_bits.tolist()) if bit)
        assert tuple(int(w) for w in row_words) == mask_to_words(mask, n)
        assert words_to_mask(int(w) for w in row_words) == mask

"""Tests for the initial-value workload generators."""

import pytest

from repro.workloads import generators


class TestUnanimous:
    def test_all_equal(self):
        values = generators.unanimous(5, value=3)
        assert set(values.values()) == {3}
        assert set(values) == set(range(5))


class TestSplit:
    def test_default_near_even(self):
        values = generators.split(9)
        assert sum(1 for v in values.values() if v == 0) == 5
        assert sum(1 for v in values.values() if v == 1) == 4

    def test_explicit_count(self):
        values = generators.split(6, value_a="a", value_b="b", count_a=2)
        assert sum(1 for v in values.values() if v == "a") == 2

    def test_count_validation(self):
        with pytest.raises(ValueError):
            generators.split(4, count_a=5)


class TestUniformRandom:
    def test_deterministic_given_seed(self):
        assert generators.uniform_random(8, seed=1) == generators.uniform_random(8, seed=1)
        assert generators.uniform_random(8, seed=1) != generators.uniform_random(8, seed=2) or True

    def test_values_from_domain(self):
        values = generators.uniform_random(20, domain=("x", "y"), seed=3)
        assert set(values.values()) <= {"x", "y"}

    def test_empty_domain_rejected(self):
        with pytest.raises(ValueError):
            generators.uniform_random(3, domain=())


class TestSkewed:
    def test_minority_size(self):
        values = generators.skewed(20, minority_fraction=0.25, seed=4)
        assert sum(1 for v in values.values() if v == 1) == 5

    def test_fraction_validation(self):
        with pytest.raises(ValueError):
            generators.skewed(10, minority_fraction=1.5)


class TestDistinct:
    def test_all_different(self):
        values = generators.distinct(7)
        assert len(set(values.values())) == 7


class TestBatch:
    def test_batch_shape_and_determinism(self):
        first = generators.batch(6, runs=4, seed=9)
        second = generators.batch(6, runs=4, seed=9)
        assert len(first) == 4
        assert first == second
        assert all(set(run) == set(range(6)) for run in first)

"""Tests for the named end-to-end scenarios."""

import pytest

from repro.simulation.engine import run_consensus
from repro.workloads.scenarios import by_name, catalogue


class TestCatalogue:
    def test_expected_scenarios_present(self):
        names = {scenario.name for scenario in catalogue()}
        assert {
            "fault-free-fast-path",
            "transient-corruption",
            "heavy-corruption-ute",
            "santoro-widmayer-blocks",
            "static-byzantine",
            "lossy-network",
        } <= names

    def test_by_name_lookup(self):
        scenario = by_name("transient-corruption")
        assert scenario.n > 0
        with pytest.raises(KeyError):
            by_name("does-not-exist")

    def test_scenarios_are_well_formed(self):
        for scenario in catalogue():
            assert set(scenario.initial_values) == set(range(scenario.n))
            algorithm = scenario.algorithm()
            adversary = scenario.adversary(seed=1)
            assert algorithm is not None and adversary is not None


class TestScenarioExecution:
    @pytest.mark.parametrize(
        "name",
        [
            "fault-free-fast-path",
            "transient-corruption",
            "heavy-corruption-ute",
            "santoro-widmayer-blocks",
            "static-byzantine",
            "lossy-network",
        ],
    )
    def test_every_scenario_runs_safely(self, name):
        scenario = by_name(name)
        result = run_consensus(
            algorithm=scenario.algorithm(),
            initial_values=scenario.initial_values,
            adversary=scenario.adversary(seed=3),
            max_rounds=scenario.max_rounds,
        )
        assert result.safe, f"{name}: {result.outcome.violations}"

    def test_fast_path_decides_in_two_rounds(self):
        scenario = by_name("fault-free-fast-path")
        result = run_consensus(
            scenario.algorithm(), scenario.initial_values, scenario.adversary(), max_rounds=5
        )
        assert result.all_satisfied
        assert result.last_decision_round <= 2

    def test_transient_corruption_terminates(self):
        scenario = by_name("transient-corruption")
        result = run_consensus(
            scenario.algorithm(),
            scenario.initial_values,
            scenario.adversary(seed=2),
            max_rounds=scenario.max_rounds,
        )
        assert result.all_satisfied

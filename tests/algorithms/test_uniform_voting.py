"""UniformVoting-style baseline and its relation to ``U_{T,E,alpha}``."""

from fractions import Fraction

from repro.adversary import PeriodicGoodPhaseAdversary, RandomOmissionAdversary, ReliableAdversary
from repro.algorithms import UniformVotingAlgorithm, UteAlgorithm
from repro.simulation.engine import run_consensus
from repro.workloads import generators


class TestUniformVoting:
    def test_thresholds_are_half(self):
        algorithm = UniformVotingAlgorithm(8)
        assert algorithm.params.threshold == Fraction(4)
        assert algorithm.params.enough == Fraction(4)
        assert algorithm.params.alpha == 0

    def test_is_a_ute_instance(self):
        assert isinstance(UniformVotingAlgorithm(8), UteAlgorithm)

    def test_fault_free_run_decides_within_two_phases(self):
        n = 8
        result = run_consensus(
            UniformVotingAlgorithm(n), generators.split(n), ReliableAdversary(), max_rounds=12
        )
        assert result.all_satisfied
        assert result.last_decision_round <= 4

    def test_unanimous_fault_free_decides_in_first_phase(self):
        n = 8
        result = run_consensus(
            UniformVotingAlgorithm(n), generators.unanimous(n, value=3), max_rounds=12
        )
        assert result.all_satisfied
        assert result.last_decision_round == 2
        assert result.decision_values == (3,)

    def test_safe_under_omissions(self):
        n = 8
        for drop in (0.2, 0.5):
            result = run_consensus(
                UniformVotingAlgorithm(n),
                generators.split(n),
                RandomOmissionAdversary(drop_probability=drop, seed=11),
                max_rounds=40,
            )
            assert result.safe

    def test_terminates_with_good_phases_despite_loss(self):
        n = 8
        adversary = PeriodicGoodPhaseAdversary(
            inner=RandomOmissionAdversary(drop_probability=0.4, seed=5), period=2
        )
        result = run_consensus(
            UniformVotingAlgorithm(n), generators.split(n), adversary, max_rounds=60
        )
        assert result.all_satisfied

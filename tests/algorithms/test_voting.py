"""Unit tests for the shared vote-counting helpers."""

from repro.algorithms.voting import (
    smallest_most_frequent,
    unique_value_above,
    value_counts,
    values_above,
    values_at_least,
)


class TestValueCounts:
    def test_empty(self):
        assert value_counts([]) == {}

    def test_multiset(self):
        counts = value_counts([1, 1, 2, 3, 3, 3])
        assert counts[1] == 2 and counts[2] == 1 and counts[3] == 3


class TestSmallestMostFrequent:
    def test_none_when_empty(self):
        assert smallest_most_frequent([]) is None

    def test_single_winner(self):
        assert smallest_most_frequent([1, 2, 2, 3]) == 2

    def test_tie_broken_towards_smallest(self):
        assert smallest_most_frequent([3, 3, 1, 1, 2]) == 1

    def test_all_distinct_returns_smallest(self):
        assert smallest_most_frequent([4, 2, 9]) == 2

    def test_strings(self):
        assert smallest_most_frequent(["b", "a", "a", "b", "c"]) == "a"

    def test_mixed_types_are_deterministic(self):
        # An adversary may inject values of unexpected types; the helper
        # must still return a deterministic answer rather than raising.
        first = smallest_most_frequent([1, "x", 1, "x"])
        second = smallest_most_frequent(["x", 1, "x", 1])
        assert first == second


class TestThresholdHelpers:
    def test_values_above_strict(self):
        assert values_above([1, 1, 2], 1) == {1: 2}
        assert values_above([1, 1, 2], 2) == {}
        assert values_above([1, 1, 2], 1.5) == {1: 2}

    def test_values_at_least_inclusive(self):
        assert values_at_least([1, 1, 2], 2) == {1: 2}
        assert values_at_least([1, 1, 2], 1) == {1: 2, 2: 1}

    def test_unique_value_above(self):
        assert unique_value_above([5, 5, 5, 7], 2) == 5
        assert unique_value_above([5, 7], 1) is None

    def test_unique_value_above_tie_break(self):
        # Two values above the bar can only happen when the relevant lemma's
        # hypothesis is violated; the helper still answers deterministically.
        assert unique_value_above([1, 1, 2, 2], 1) == 1

"""Tests for the algorithm name registry."""

import pytest

from repro.algorithms import (
    AteAlgorithm,
    OneThirdRuleAlgorithm,
    PhaseKingAlgorithm,
    UniformVotingAlgorithm,
    UteAlgorithm,
    available_algorithms,
    make_algorithm,
)


class TestRegistry:
    def test_available_names(self):
        names = available_algorithms()
        assert "ate" in names and "ute" in names and "phase-king" in names
        assert names == sorted(names)

    def test_make_ate(self):
        algorithm = make_algorithm("ate", n=8, alpha=1)
        assert isinstance(algorithm, AteAlgorithm)
        assert algorithm.params.n == 8 and algorithm.params.alpha == 1

    def test_make_ute(self):
        algorithm = make_algorithm("ute", n=9, alpha=2)
        assert isinstance(algorithm, UteAlgorithm)
        assert algorithm.params.alpha == 2

    def test_make_baselines(self):
        assert isinstance(make_algorithm("one-third-rule", n=9), OneThirdRuleAlgorithm)
        assert isinstance(make_algorithm("uniform-voting", n=9), UniformVotingAlgorithm)

    def test_make_phase_king(self):
        algorithm = make_algorithm("phase-king", n=9, f=2)
        assert isinstance(algorithm, PhaseKingAlgorithm)
        assert algorithm.f == 2

    def test_name_normalisation(self):
        assert isinstance(make_algorithm("OneThirdRule", n=9), OneThirdRuleAlgorithm)
        assert isinstance(make_algorithm("A_TE", n=8, alpha=1), AteAlgorithm)

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            make_algorithm("paxos", n=5)

"""Tests for the algorithm name registry."""

import pytest

from repro.algorithms import (
    AteAlgorithm,
    OneThirdRuleAlgorithm,
    PhaseKingAlgorithm,
    UniformVotingAlgorithm,
    UteAlgorithm,
    accepted_kwargs,
    available_algorithms,
    make_algorithm,
    supports_fast,
)


class TestRegistry:
    def test_available_names(self):
        names = available_algorithms()
        assert "ate" in names and "ute" in names and "phase-king" in names
        assert names == sorted(names)

    def test_make_ate(self):
        algorithm = make_algorithm("ate", n=8, alpha=1)
        assert isinstance(algorithm, AteAlgorithm)
        assert algorithm.params.n == 8 and algorithm.params.alpha == 1

    def test_make_ute(self):
        algorithm = make_algorithm("ute", n=9, alpha=2)
        assert isinstance(algorithm, UteAlgorithm)
        assert algorithm.params.alpha == 2

    def test_make_baselines(self):
        assert isinstance(make_algorithm("one-third-rule", n=9), OneThirdRuleAlgorithm)
        assert isinstance(make_algorithm("uniform-voting", n=9), UniformVotingAlgorithm)

    def test_make_phase_king(self):
        algorithm = make_algorithm("phase-king", n=9, f=2)
        assert isinstance(algorithm, PhaseKingAlgorithm)
        assert algorithm.f == 2

    def test_name_normalisation(self):
        assert isinstance(make_algorithm("OneThirdRule", n=9), OneThirdRuleAlgorithm)
        assert isinstance(make_algorithm("A_TE", n=8, alpha=1), AteAlgorithm)

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            make_algorithm("paxos", n=5)


class TestKwargValidation:
    def test_unknown_kwarg_raises_listing_accepted(self):
        with pytest.raises(ValueError, match="aplha") as excinfo:
            make_algorithm("ate", n=8, aplha=1)  # the classic typo
        assert "alpha" in str(excinfo.value)

    def test_unknown_kwarg_for_kwargless_algorithm(self):
        with pytest.raises(ValueError, match="none"):
            make_algorithm("one-third-rule", n=8, alpha=1)

    def test_valid_kwargs_still_accepted(self):
        algorithm = make_algorithm("ute", n=9, alpha=1, default_value=5)
        assert algorithm.default_value == 5
        assert make_algorithm("phase-king", n=9, f=2).f == 2

    def test_accepted_kwargs(self):
        assert accepted_kwargs("ate") == frozenset({"alpha"})
        assert accepted_kwargs("ute") == frozenset({"alpha", "default_value"})
        assert accepted_kwargs("one-third-rule") == frozenset()
        assert accepted_kwargs("phase-king") == frozenset({"f"})


class TestDidYouMean:
    def test_typo_gets_suggestion(self):
        with pytest.raises(KeyError, match="did you mean 'ate'"):
            make_algorithm("aet", n=5)
        with pytest.raises(KeyError, match="did you mean 'phase-king'"):
            make_algorithm("phase-kign", n=5)

    def test_unrelated_name_lists_available(self):
        with pytest.raises(KeyError, match="available:"):
            make_algorithm("zzzzzz", n=5)


class TestSupportsFast:
    def test_fast_kernel_advertisement(self):
        assert supports_fast("ate")
        assert supports_fast("A_TE")  # aliases resolve too
        assert supports_fast("uniform-voting")
        assert not supports_fast("phase-king")

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            supports_fast("paxos")

"""Unit tests for the ``A_{T,E}`` algorithm (Algorithm 1)."""

import pytest

from repro.algorithms.ate import AteAlgorithm, AteProcess
from repro.core.parameters import AteParameters
from repro.core.predicates import AlphaSafePredicate, ALivePredicate


def make_process(n=6, alpha=0, pid=0, initial=0, **kwargs):
    params = AteParameters.symmetric(n=n, alpha=alpha)
    return AteProcess(pid, n, initial, params, **kwargs), params


class TestAteProcess:
    def test_sends_current_estimate(self):
        proc, _ = make_process(initial=7)
        assert proc.send(1) == 7
        assert proc.send_to(1, 3) == 7

    def test_rejects_mismatched_n(self):
        params = AteParameters.symmetric(n=5, alpha=0)
        with pytest.raises(ValueError):
            AteProcess(0, 6, 0, params)

    def test_no_update_below_threshold(self):
        proc, params = make_process(n=6, initial=5)
        # T = 4: hearing of exactly 4 processes is NOT enough (strict >).
        proc.transition(1, {0: 1, 1: 1, 2: 1, 3: 1})
        assert proc.x == 5
        assert not proc.decided

    def test_update_to_smallest_most_frequent(self):
        proc, _ = make_process(n=6, initial=5)
        proc.transition(1, {0: 2, 1: 2, 2: 1, 3: 1, 4: 3})
        assert proc.x == 1  # tie between 1 and 2 broken towards the smallest

    def test_decides_when_enough_equal_values(self):
        proc, params = make_process(n=6, initial=0)
        reception = {q: 1 for q in range(5)}  # 5 > E = 4
        proc.transition(1, reception)
        assert proc.decided and proc.decision == 1
        assert proc.decision_round == 1
        assert proc.x == 1

    def test_does_not_decide_on_mixed_values(self):
        proc, _ = make_process(n=6, initial=0)
        proc.transition(1, {0: 1, 1: 1, 2: 0, 3: 0, 4: 1})
        assert not proc.decided

    def test_decision_guard_independent_of_update_guard(self):
        # With T > E (allowed by Theorem 1 for large E... here constructed
        # explicitly), a process must still decide when > E equal values
        # arrive even if |HO| <= T.  This mirrors the termination proof.
        params = AteParameters(n=10, alpha=0, threshold=9, enough=6)
        proc = AteProcess(0, 10, 0, params)
        proc.transition(1, {q: 4 for q in range(7)})  # 7 > E = 6 but 7 <= T = 9
        assert proc.decided and proc.decision == 4
        assert proc.x == 0  # estimate untouched because |HO| <= T

    def test_nested_guard_variant_defers_decision(self):
        params = AteParameters(n=10, alpha=0, threshold=9, enough=6)
        proc = AteProcess(0, 10, 0, params, nested_decision_guard=True)
        proc.transition(1, {q: 4 for q in range(7)})
        assert not proc.decided

    def test_state_snapshot_exposes_estimate(self):
        proc, _ = make_process(initial=3)
        assert proc.state_snapshot()["x"] == 3

    def test_decision_is_stable_across_rounds(self):
        proc, _ = make_process(n=6, initial=0)
        proc.transition(1, {q: 1 for q in range(6)})
        assert proc.decision == 1
        # Later rounds with a different (corrupted) majority re-derive the
        # same decision or none, but never a different one under P_alpha-
        # compatible receptions; here a full flip would raise.
        proc.transition(2, {q: 1 for q in range(6)})
        assert proc.decision == 1


class TestAteAlgorithm:
    def test_factory_creates_processes_with_initial_values(self):
        algorithm = AteAlgorithm.symmetric(n=4, alpha=0)
        processes = algorithm.create_all({0: 3, 1: 1, 2: 4, 3: 1})
        assert len(processes) == 4
        assert processes[2].x == 4

    def test_create_all_requires_contiguous_pids(self):
        algorithm = AteAlgorithm.symmetric(n=3, alpha=0)
        with pytest.raises(ValueError):
            algorithm.create_all({0: 1, 2: 2, 5: 3})

    def test_predicates_match_parameters(self):
        algorithm = AteAlgorithm.symmetric(n=9, alpha=2)
        safety = algorithm.safety_predicate()
        liveness = algorithm.liveness_predicate()
        assert isinstance(safety, AlphaSafePredicate) and safety.alpha == 2
        assert isinstance(liveness, ALivePredicate)
        assert liveness.threshold == algorithm.params.threshold
        assert liveness.enough == algorithm.params.enough

    def test_name_mentions_thresholds(self):
        algorithm = AteAlgorithm.symmetric(n=9, alpha=1)
        assert "A(" in algorithm.name and "alpha=1" in algorithm.name

    def test_rounds_per_phase(self):
        assert AteAlgorithm.symmetric(n=4, alpha=0).rounds_per_phase == 1

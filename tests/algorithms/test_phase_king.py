"""Unit and behaviour tests for the phase-king static-Byzantine baseline."""

import pytest

from repro.adversary import ReliableAdversary, StaticByzantineAdversary
from repro.algorithms import PhaseKingAlgorithm
from repro.algorithms.phase_king import PhaseKingProcess
from repro.core.predicates import ByzantineSynchronousPredicate
from repro.simulation.engine import run_consensus
from repro.workloads import generators


class TestPhaseKingProcess:
    def test_round_bookkeeping(self):
        proc = PhaseKingProcess(0, 5, 0, f=1)
        assert proc.total_phases == 2
        assert proc.total_rounds == 4
        assert PhaseKingProcess.phase_of(1) == 1
        assert PhaseKingProcess.phase_of(2) == 1
        assert PhaseKingProcess.phase_of(3) == 2
        assert PhaseKingProcess.is_first_round(1)
        assert not PhaseKingProcess.is_first_round(2)
        assert proc.king_of(1) == 0
        assert proc.king_of(2) == 1

    def test_negative_f_rejected(self):
        with pytest.raises(ValueError):
            PhaseKingProcess(0, 5, 0, f=-1)

    def test_majority_tracking_and_king_adoption(self):
        n = 5
        proc = PhaseKingProcess(2, n, 1, f=1)
        # First round: majority of zeros but not overwhelming (not > n/2 + f).
        proc.transition(1, {0: 0, 1: 0, 2: 1, 3: 1, 4: 0})
        assert proc._majority == 0
        # Second round: the king (process 0) says 1; the local count (3) is
        # not > n/2 + f = 3.5, so the king's value is adopted.
        proc.transition(2, {0: 1})
        assert proc.x == 1

    def test_strong_majority_overrides_king(self):
        n = 5
        proc = PhaseKingProcess(2, n, 1, f=1)
        proc.transition(1, {q: 0 for q in range(n)})  # count 5 > 3.5
        proc.transition(2, {0: 1})
        assert proc.x == 0

    def test_decides_after_last_phase(self):
        n = 5
        proc = PhaseKingProcess(0, n, 0, f=1)
        for round_num in range(1, proc.total_rounds + 1):
            proc.transition(round_num, {q: 0 for q in range(n)})
        assert proc.decided and proc.decision == 0


class TestPhaseKingAlgorithm:
    def test_resilience_flag(self):
        assert PhaseKingAlgorithm(9, 2).within_resilience_bound
        assert not PhaseKingAlgorithm(8, 2).within_resilience_bound

    def test_rounds_to_decide(self):
        assert PhaseKingAlgorithm(9, 2).rounds_to_decide == 6

    def test_safety_predicate_is_classical_synchronous(self):
        predicate = PhaseKingAlgorithm(9, 2).safety_predicate()
        assert isinstance(predicate, ByzantineSynchronousPredicate)
        assert predicate.f == 2

    def test_fault_free_consensus(self):
        n = 9
        result = run_consensus(
            PhaseKingAlgorithm(n, f=2), generators.split(n), ReliableAdversary(), max_rounds=10
        )
        assert result.all_satisfied
        assert result.last_decision_round == 6

    def test_consensus_under_static_byzantine_senders(self):
        n = 9
        f = 2
        for seed in range(3):
            result = run_consensus(
                PhaseKingAlgorithm(n, f=f),
                generators.skewed(n, seed=seed),
                StaticByzantineAdversary(byzantine=range(f), value_domain=(0, 1), seed=seed),
                max_rounds=12,
            )
            # The non-Byzantine majority must agree; the adversary only
            # corrupts transmissions of the two Byzantine senders.
            assert result.safe
            assert result.termination

    def test_mismatched_n_rejected(self):
        algorithm = PhaseKingAlgorithm(5, 1)
        with pytest.raises(ValueError):
            algorithm.create_process(0, 6, 0)

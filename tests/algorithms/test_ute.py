"""Unit tests for the ``U_{T,E,alpha}`` algorithm (Algorithm 2)."""

import pytest

from repro.algorithms.ute import QUESTION_MARK, UteAlgorithm, UteProcess
from repro.core.parameters import UteParameters
from repro.core.predicates import AndPredicate, ULivePredicate


def make_process(n=8, alpha=1, pid=0, initial=0, default=0):
    params = UteParameters.minimal(n=n, alpha=alpha)
    return UteProcess(pid, n, initial, params, default_value=default), params


class TestQuestionMark:
    def test_singleton(self):
        from repro.algorithms.ute import _QuestionMark

        assert _QuestionMark() is QUESTION_MARK

    def test_repr(self):
        assert repr(QUESTION_MARK) == "?"

    def test_survives_deepcopy(self):
        import copy

        assert copy.deepcopy(QUESTION_MARK) is QUESTION_MARK


class TestUteProcessFirstRound:
    def test_sends_estimate_on_odd_rounds(self):
        proc, _ = make_process(initial=5)
        assert proc.send(1) == 5
        assert proc.send(3) == 5

    def test_votes_when_enough_agree(self):
        proc, params = make_process(n=8, alpha=1, initial=0)
        # T = 5: six identical values are strictly more than T.
        proc.transition(1, {q: 7 for q in range(6)})
        assert proc.vote == 7

    def test_no_vote_when_below_threshold(self):
        proc, _ = make_process(n=8, alpha=1, initial=0)
        proc.transition(1, {q: 7 for q in range(5)})  # exactly T = 5, not strict
        assert proc.vote is QUESTION_MARK

    def test_question_marks_are_not_votable_values(self):
        proc, _ = make_process(n=8, alpha=1, initial=0)
        proc.transition(1, {q: QUESTION_MARK for q in range(8)})
        assert proc.vote is QUESTION_MARK

    def test_rejects_mismatched_n(self):
        params = UteParameters.minimal(n=5, alpha=0)
        with pytest.raises(ValueError):
            UteProcess(0, 6, 0, params)


class TestUteProcessSecondRound:
    def test_sends_vote_on_even_rounds(self):
        proc, _ = make_process(initial=5)
        proc.transition(1, {q: 9 for q in range(7)})
        assert proc.send(2) == 9

    def test_adopts_witnessed_vote(self):
        proc, params = make_process(n=8, alpha=1, initial=0)
        # alpha + 1 = 2 identical proper votes suffice to adopt.
        proc.transition(2, {0: 9, 1: 9, 2: QUESTION_MARK})
        assert proc.x == 9
        assert proc.vote is QUESTION_MARK  # reset at the end of the phase

    def test_adopts_default_without_witness(self):
        proc, _ = make_process(n=8, alpha=1, initial=5, default=42)
        proc.transition(2, {0: 9, 1: QUESTION_MARK, 2: QUESTION_MARK})
        assert proc.x == 42

    def test_single_vote_insufficient_when_alpha_positive(self):
        # With alpha = 1, one vote could be a corruption: the default is used.
        proc, _ = make_process(n=8, alpha=1, initial=5, default=0)
        proc.transition(2, {0: 9})
        assert proc.x == 0

    def test_alpha_zero_adopts_single_vote(self):
        proc, _ = make_process(n=8, alpha=0, initial=5, default=0)
        proc.transition(2, {0: 9})
        assert proc.x == 9

    def test_decides_on_enough_votes(self):
        proc, params = make_process(n=8, alpha=1, initial=0)
        # E = 5.5: six identical proper votes decide.
        proc.transition(2, {q: 3 for q in range(6)})
        assert proc.decided and proc.decision == 3
        assert proc.decision_round == 2

    def test_question_marks_do_not_count_towards_decision(self):
        proc, _ = make_process(n=8, alpha=1, initial=0)
        reception = {q: QUESTION_MARK for q in range(6)}
        reception.update({6: 3, 7: 3})
        proc.transition(2, reception)
        assert not proc.decided

    def test_vote_reset_after_every_phase(self):
        proc, _ = make_process(n=8, alpha=1, initial=0)
        proc.transition(1, {q: 7 for q in range(6)})
        assert proc.vote == 7
        proc.transition(2, {q: 7 for q in range(6)})
        assert proc.vote is QUESTION_MARK

    def test_state_snapshot(self):
        proc, _ = make_process(initial=4)
        snapshot = proc.state_snapshot()
        assert snapshot["x"] == 4
        assert snapshot["vote"] is None  # '?' is reported as None


class TestUteAlgorithm:
    def test_minimal_constructor(self):
        algorithm = UteAlgorithm.minimal(n=9, alpha=2, default_value=1)
        assert float(algorithm.params.threshold) == 6.5
        proc = algorithm.create_process(0, 9, 5)
        assert proc.default_value == 1

    def test_predicates(self):
        algorithm = UteAlgorithm.minimal(n=9, alpha=2)
        safety = algorithm.safety_predicate()
        assert isinstance(safety, AndPredicate)
        assert len(safety.parts) == 2
        liveness = algorithm.liveness_predicate()
        assert isinstance(liveness, ULivePredicate)

    def test_rounds_per_phase(self):
        assert UteAlgorithm.minimal(n=4, alpha=0).rounds_per_phase == 2

    def test_voting_round_classification(self):
        assert UteProcess.is_voting_round(1)
        assert not UteProcess.is_voting_round(2)
        assert UteProcess.is_voting_round(17)

"""OneThirdRule baseline and its equivalence with ``A_{2n/3, 2n/3}``."""

from fractions import Fraction

from repro.adversary import PeriodicGoodRoundAdversary, RandomOmissionAdversary
from repro.algorithms import AteAlgorithm, OneThirdRuleAlgorithm
from repro.core.parameters import AteParameters
from repro.simulation.engine import run_consensus
from repro.workloads import generators


class TestOneThirdRule:
    def test_thresholds_are_two_thirds(self):
        algorithm = OneThirdRuleAlgorithm(9)
        assert algorithm.params.threshold == Fraction(6)
        assert algorithm.params.enough == Fraction(6)
        assert algorithm.params.alpha == 0

    def test_is_an_ate_instance(self):
        algorithm = OneThirdRuleAlgorithm(9)
        assert isinstance(algorithm, AteAlgorithm)

    def test_fault_free_decides_in_two_rounds(self):
        n = 9
        result = run_consensus(
            OneThirdRuleAlgorithm(n), generators.split(n), max_rounds=10
        )
        assert result.all_satisfied
        assert result.last_decision_round <= 2

    def test_unanimous_decides_in_one_round(self):
        n = 9
        result = run_consensus(
            OneThirdRuleAlgorithm(n), generators.unanimous(n, value=4), max_rounds=10
        )
        assert result.all_satisfied
        assert result.last_decision_round == 1
        assert result.decision_values == (4,)

    def test_equivalence_with_symmetric_ate_at_alpha_zero(self):
        """The paper: A_{2n/3,2n/3} at alpha=0 coincides exactly with OneThirdRule."""
        n = 9
        for seed in range(5):
            workload = generators.uniform_random(n, seed=seed)
            results = []
            for algorithm in (
                OneThirdRuleAlgorithm(n),
                AteAlgorithm(AteParameters.symmetric(n=n, alpha=0)),
            ):
                adversary = PeriodicGoodRoundAdversary(
                    inner=RandomOmissionAdversary(drop_probability=0.25, seed=1000 + seed),
                    period=3,
                )
                results.append(
                    run_consensus(algorithm, workload, adversary, max_rounds=40)
                )
            first, second = results
            assert first.outcome.decision_values == second.outcome.decision_values
            assert first.outcome.decision_rounds == second.outcome.decision_rounds
            assert first.rounds_executed == second.rounds_executed

    def test_safe_under_arbitrary_omissions(self):
        """OneThirdRule is always safe, whatever the number of benign faults."""
        n = 9
        for drop in (0.3, 0.6, 0.9):
            result = run_consensus(
                OneThirdRuleAlgorithm(n),
                generators.split(n),
                RandomOmissionAdversary(drop_probability=drop, seed=7),
                max_rounds=30,
            )
            assert result.safe

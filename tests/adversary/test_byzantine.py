"""Tests for the static Byzantine-process adversary (Section 5.2 encoding)."""

import pytest

from repro.adversary.byzantine import StaticByzantineAdversary
from repro.core.heardof import HeardOfCollection, ReceptionVector, RoundRecord
from repro.core.predicates import (
    AlphaSafePredicate,
    ByzantineAsynchronousPredicate,
    ByzantineSynchronousPredicate,
    PermanentAlphaPredicate,
)


def intended_matrix(n, value=0):
    return {sender: {receiver: value for receiver in range(n)} for sender in range(n)}


def to_collection(n, received_rounds, intended_value=0):
    records = []
    for round_num, received in enumerate(received_rounds, start=1):
        receptions = {
            receiver: ReceptionVector(
                receiver=receiver,
                received=received.get(receiver, {}),
                intended={sender: intended_value for sender in range(n)},
            )
            for receiver in range(n)
        }
        records.append(RoundRecord(round_num=round_num, receptions=receptions))
    return HeardOfCollection(n, records)


class TestStaticByzantine:
    def test_only_byzantine_senders_corrupted(self):
        n = 5
        adversary = StaticByzantineAdversary(byzantine=[0, 1], seed=2)
        intended = intended_matrix(n, value=4)
        received = adversary.deliver_round(1, intended)
        for receiver, inbox in received.items():
            assert inbox[0] != 4 and inbox[1] != 4
            for good in (2, 3, 4):
                assert inbox[good] == 4

    def test_symmetric_mode_sends_same_corruption_to_all(self):
        n = 5
        adversary = StaticByzantineAdversary(byzantine=[0], equivocate=False, seed=2)
        intended = intended_matrix(n, value=4)
        received = adversary.deliver_round(1, intended)
        values = {received[receiver][0] for receiver in range(n)}
        assert len(values) == 1
        assert values != {4}

    def test_equivocation_can_differ_across_receivers(self):
        n = 8
        adversary = StaticByzantineAdversary(byzantine=[0], equivocate=True, value_domain=(1, 2, 3), seed=5)
        intended = intended_matrix(n, value=0)
        received = adversary.deliver_round(1, intended)
        values = {received[receiver][0] for receiver in range(n)}
        assert len(values) >= 2  # with 8 receivers and 3 candidate values this is overwhelmingly likely

    def test_generated_runs_satisfy_classical_predicates(self):
        n = 6
        f = 2
        adversary = StaticByzantineAdversary(byzantine=[0, 1], seed=3)
        intended = intended_matrix(n, value=4)
        rounds = [adversary.deliver_round(r, intended) for r in range(1, 5)]
        collection = to_collection(n, rounds, intended_value=4)
        assert ByzantineSynchronousPredicate(n, f).holds(collection)
        assert ByzantineAsynchronousPredicate(n, f).holds(collection)
        assert PermanentAlphaPredicate(f).holds(collection)
        assert AlphaSafePredicate(f).holds(collection)
        assert not AlphaSafePredicate(f - 1).holds(collection)

    def test_drop_probability_validation(self):
        with pytest.raises(ValueError):
            StaticByzantineAdversary(byzantine=[0], drop_probability=1.5)

    def test_f_property(self):
        assert StaticByzantineAdversary(byzantine=[0, 3, 4]).f == 3

"""Tests for the adversary combinators (caps, minimum safe delivery, schedules)."""

import pytest

from repro.adversary.base import ReliableAdversary
from repro.adversary.benign import RandomOmissionAdversary
from repro.adversary.compose import (
    AlphaCapAdversary,
    MinimumSafeDeliveryAdversary,
    RoundScheduleAdversary,
    SequentialAdversary,
)
from repro.adversary.corruption import UnboundedCorruptionAdversary


def intended_matrix(n, value=0):
    return {sender: {receiver: value for receiver in range(n)} for sender in range(n)}


def per_receiver_corruptions(intended, received):
    return {
        receiver: sum(
            1 for sender, payload in inbox.items() if payload != intended[sender][receiver]
        )
        for receiver, inbox in received.items()
    }


def per_receiver_safe(intended, received):
    return {
        receiver: sum(
            1 for sender, payload in inbox.items() if payload == intended[sender][receiver]
        )
        for receiver, inbox in received.items()
    }


class TestAlphaCap:
    def test_cap_enforced_on_aggressive_inner(self):
        n = 6
        inner = UnboundedCorruptionAdversary(corruption_probability=1.0, seed=1)
        for alpha in (0, 1, 3):
            adversary = AlphaCapAdversary(inner=inner, alpha=alpha)
            intended = intended_matrix(n, value=2)
            received = adversary.deliver_round(1, intended)
            counts = per_receiver_corruptions(intended, received)
            assert max(counts.values()) <= alpha

    def test_restored_messages_carry_intended_value(self):
        n = 4
        inner = UnboundedCorruptionAdversary(corruption_probability=1.0, seed=1)
        adversary = AlphaCapAdversary(inner=inner, alpha=1)
        intended = intended_matrix(n, value=7)
        received = adversary.deliver_round(1, intended)
        for receiver, inbox in received.items():
            clean = [payload for payload in inbox.values() if payload == 7]
            assert len(clean) == n - 1

    def test_omissions_left_untouched(self):
        n = 5
        inner = RandomOmissionAdversary(drop_probability=0.5, seed=4)
        adversary = AlphaCapAdversary(inner=inner, alpha=0)
        intended = intended_matrix(n, value=7)
        received = adversary.deliver_round(1, intended)
        reference = RandomOmissionAdversary(drop_probability=0.5, seed=4).deliver_round(
            1, intended
        )
        assert received == reference

    def test_negative_alpha_rejected(self):
        with pytest.raises(ValueError):
            AlphaCapAdversary(inner=ReliableAdversary(), alpha=-1)


class TestMinimumSafeDelivery:
    def test_minimum_safe_receptions_guaranteed(self):
        n = 6
        inner = UnboundedCorruptionAdversary(corruption_probability=1.0, seed=1)
        adversary = MinimumSafeDeliveryAdversary(inner=inner, minimum=4)
        intended = intended_matrix(n, value=2)
        received = adversary.deliver_round(1, intended)
        safe = per_receiver_safe(intended, received)
        assert min(safe.values()) >= 4

    def test_for_strict_bound_constructor(self):
        inner = ReliableAdversary()
        adversary = MinimumSafeDeliveryAdversary.for_strict_bound(inner, 4.5)
        assert adversary.minimum == 5
        adversary = MinimumSafeDeliveryAdversary.for_strict_bound(inner, 4.0)
        assert adversary.minimum == 5

    def test_restores_omissions_when_needed(self):
        n = 5
        inner = RandomOmissionAdversary(drop_probability=1.0, seed=1)
        adversary = MinimumSafeDeliveryAdversary(inner=inner, minimum=3)
        intended = intended_matrix(n, value=2)
        received = adversary.deliver_round(1, intended)
        assert all(len(inbox) >= 3 for inbox in received.values())


class TestSequentialAdversary:
    def test_switches_at_round_boundaries(self):
        n = 4
        phases = [
            (1, UnboundedCorruptionAdversary(corruption_probability=1.0, seed=1)),
            (3, ReliableAdversary()),
        ]
        adversary = SequentialAdversary(phases)
        intended = intended_matrix(n, value=2)
        assert max(per_receiver_corruptions(intended, adversary.deliver_round(1, intended)).values()) > 0
        assert max(per_receiver_corruptions(intended, adversary.deliver_round(2, intended)).values()) > 0
        assert max(per_receiver_corruptions(intended, adversary.deliver_round(3, intended)).values()) == 0
        assert max(per_receiver_corruptions(intended, adversary.deliver_round(9, intended)).values()) == 0

    def test_requires_phase_starting_at_one(self):
        with pytest.raises(ValueError):
            SequentialAdversary([(2, ReliableAdversary())])
        with pytest.raises(ValueError):
            SequentialAdversary([])

    def test_adversary_for_round_selection(self):
        reliable = ReliableAdversary()
        noisy = UnboundedCorruptionAdversary(corruption_probability=1.0, seed=1)
        adversary = SequentialAdversary([(1, noisy), (5, reliable)])
        assert adversary.adversary_for_round(4) is noisy
        assert adversary.adversary_for_round(5) is reliable


class TestRoundScheduleAdversary:
    def test_schedule_function_picks_adversary(self):
        n = 4
        noisy = UnboundedCorruptionAdversary(corruption_probability=1.0, seed=1)
        adversary = RoundScheduleAdversary(lambda r: noisy if r % 2 else None)
        intended = intended_matrix(n, value=2)
        assert max(per_receiver_corruptions(intended, adversary.deliver_round(1, intended)).values()) > 0
        assert max(per_receiver_corruptions(intended, adversary.deliver_round(2, intended)).values()) == 0

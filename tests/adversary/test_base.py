"""Tests for the adversary abstractions (edge fates, reliable delivery)."""

from repro.adversary.base import (
    Fate,
    FateKind,
    ReliableAdversary,
    perfect_delivery,
)


def intended_matrix(n, value=0):
    return {sender: {receiver: value for receiver in range(n)} for sender in range(n)}


class TestFate:
    def test_constructors(self):
        assert Fate.deliver().kind is FateKind.DELIVER
        assert Fate.drop().kind is FateKind.DROP
        corrupt = Fate.corrupt(42)
        assert corrupt.kind is FateKind.CORRUPT and corrupt.corrupted_payload == 42


class TestPerfectDelivery:
    def test_transposes_matrix(self):
        intended = {0: {0: "a", 1: "b"}, 1: {0: "c", 1: "d"}}
        received = perfect_delivery(intended)
        assert received == {0: {0: "a", 1: "c"}, 1: {0: "b", 1: "d"}}


class TestReliableAdversary:
    def test_everything_delivered_unchanged(self):
        adversary = ReliableAdversary()
        intended = intended_matrix(4, value=9)
        received = adversary.deliver_round(1, intended)
        assert set(received) == set(range(4))
        for receiver in range(4):
            assert received[receiver] == {sender: 9 for sender in range(4)}

    def test_reset_is_idempotent(self):
        adversary = ReliableAdversary(seed=3)
        adversary.reset()
        assert adversary.seed == 3


class TestEdgeAdversaryContract:
    def test_drop_removes_entry_but_keeps_receiver(self):
        from repro.adversary.benign import SilentSendersAdversary

        adversary = SilentSendersAdversary(silent=[0])
        received = adversary.deliver_round(1, intended_matrix(3))
        # Receivers still appear (possibly with empty inboxes), dropped senders do not.
        assert set(received) == {0, 1, 2}
        for inbox in received.values():
            assert 0 not in inbox
            assert set(inbox) == {1, 2}

    def test_corrupt_replaces_payload(self):
        from repro.adversary.byzantine import StaticByzantineAdversary

        adversary = StaticByzantineAdversary(byzantine=[1], seed=0)
        intended = intended_matrix(3, value=5)
        received = adversary.deliver_round(1, intended)
        for receiver in range(3):
            assert received[receiver][1] != 5
            assert received[receiver][0] == 5
            assert received[receiver][2] == 5

"""Tests for the value-fault (corruption) adversaries."""

import pytest

from repro.adversary.corruption import (
    RandomCorruptionAdversary,
    RotatingSenderCorruptionAdversary,
    SplitVoteAdversary,
    UnboundedCorruptionAdversary,
)


def intended_matrix(n, value=0):
    return {sender: {receiver: value for receiver in range(n)} for sender in range(n)}


def per_receiver_corruptions(intended, received):
    result = {}
    for receiver, inbox in received.items():
        result[receiver] = sum(
            1 for sender, payload in inbox.items() if payload != intended[sender][receiver]
        )
    return result


class TestRandomCorruption:
    def test_validation(self):
        with pytest.raises(ValueError):
            RandomCorruptionAdversary(alpha=-1)
        with pytest.raises(ValueError):
            RandomCorruptionAdversary(alpha=1, corruption_probability=2)
        with pytest.raises(ValueError):
            RandomCorruptionAdversary(alpha=1, drop_probability=-0.5)

    def test_alpha_zero_never_corrupts(self):
        adversary = RandomCorruptionAdversary(alpha=0, seed=1)
        intended = intended_matrix(5, value=3)
        for round_num in range(1, 6):
            received = adversary.deliver_round(round_num, intended)
            assert all(c == 0 for c in per_receiver_corruptions(intended, received).values())

    def test_respects_alpha_bound_per_receiver_per_round(self):
        for alpha in (1, 2, 3):
            adversary = RandomCorruptionAdversary(alpha=alpha, seed=7)
            intended = intended_matrix(8, value=1)
            for round_num in range(1, 20):
                received = adversary.deliver_round(round_num, intended)
                counts = per_receiver_corruptions(intended, received)
                assert max(counts.values()) <= alpha

    def test_corrupted_values_come_from_domain(self):
        adversary = RandomCorruptionAdversary(alpha=2, value_domain=(5, 6), seed=3)
        intended = intended_matrix(6, value=5)
        received = adversary.deliver_round(1, intended)
        for receiver, inbox in received.items():
            for sender, payload in inbox.items():
                assert payload in (5, 6)

    def test_corruption_is_a_real_change(self):
        # Even with a domain equal to the intended value, corrupted entries differ.
        adversary = RandomCorruptionAdversary(alpha=3, value_domain=(0,), seed=3)
        intended = intended_matrix(6, value=0)
        received = adversary.deliver_round(1, intended)
        counts = per_receiver_corruptions(intended, received)
        # Some corruption happened (poison fallback) and none equals the original.
        assert sum(counts.values()) > 0

    def test_drop_probability_produces_omissions_not_corruptions(self):
        adversary = RandomCorruptionAdversary(alpha=0, drop_probability=0.5, seed=9)
        intended = intended_matrix(8, value=2)
        received = adversary.deliver_round(1, intended)
        total_received = sum(len(inbox) for inbox in received.values())
        assert total_received < 64
        assert all(c == 0 for c in per_receiver_corruptions(intended, received).values())

    def test_deterministic_given_seed(self):
        a = RandomCorruptionAdversary(alpha=2, seed=13)
        b = RandomCorruptionAdversary(alpha=2, seed=13)
        assert a.deliver_round(1, intended_matrix(6)) == b.deliver_round(1, intended_matrix(6))


class TestRotatingSenderCorruption:
    def test_alpha_senders_corrupted_per_round(self):
        alpha = 2
        adversary = RotatingSenderCorruptionAdversary(alpha=alpha, seed=1)
        intended = intended_matrix(6, value=1)
        received = adversary.deliver_round(1, intended)
        corrupted_senders = set()
        for receiver, inbox in received.items():
            for sender, payload in inbox.items():
                if payload != 1:
                    corrupted_senders.add(sender)
        assert len(corrupted_senders) <= alpha
        counts = per_receiver_corruptions(intended, received)
        assert max(counts.values()) <= alpha

    def test_victims_rotate_across_rounds(self):
        adversary = RotatingSenderCorruptionAdversary(alpha=1, seed=1)
        intended = intended_matrix(4, value=1)
        victims = []
        for round_num in range(1, 5):
            received = adversary.deliver_round(round_num, intended)
            for receiver, inbox in received.items():
                for sender, payload in inbox.items():
                    if payload != 1:
                        victims.append(sender)
                        break
                break
        assert len(set(victims)) > 1  # dynamic faults: different senders over time

    def test_alpha_zero_is_reliable(self):
        adversary = RotatingSenderCorruptionAdversary(alpha=0, seed=1)
        intended = intended_matrix(4, value=1)
        received = adversary.deliver_round(1, intended)
        assert per_receiver_corruptions(intended, received) == {p: 0 for p in range(4)}


class TestUnboundedCorruption:
    def test_probability_one_corrupts_everything(self):
        adversary = UnboundedCorruptionAdversary(corruption_probability=1.0, seed=2)
        intended = intended_matrix(4, value=1)
        received = adversary.deliver_round(1, intended)
        counts = per_receiver_corruptions(intended, received)
        assert all(count == 4 for count in counts.values())

    def test_probability_zero_is_reliable(self):
        adversary = UnboundedCorruptionAdversary(corruption_probability=0.0, seed=2)
        intended = intended_matrix(4, value=1)
        received = adversary.deliver_round(1, intended)
        assert all(count == 0 for count in per_receiver_corruptions(intended, received).values())


class TestSplitVote:
    def test_two_camps_receive_different_values(self):
        adversary = SplitVoteAdversary(budget_per_receiver=4, value_a="A", value_b="B", seed=1)
        intended = intended_matrix(4, value="A")
        received = adversary.deliver_round(1, intended)
        # Camp 0 (receivers 0, 1) wants A: already unanimous, nothing to corrupt.
        assert all(payload == "A" for payload in received[0].values())
        # Camp 1 (receivers 2, 3) is pushed towards B within the budget.
        assert sum(1 for payload in received[2].values() if payload == "B") == 4

    def test_budget_limits_rewrites(self):
        adversary = SplitVoteAdversary(budget_per_receiver=1, value_a="A", value_b="B", seed=1)
        intended = intended_matrix(4, value="A")
        received = adversary.deliver_round(1, intended)
        assert sum(1 for payload in received[3].values() if payload == "B") == 1

    def test_no_omissions(self):
        adversary = SplitVoteAdversary(budget_per_receiver=2, value_a=0, value_b=1, seed=1)
        received = adversary.deliver_round(1, intended_matrix(6, value=0))
        assert all(len(inbox) == 6 for inbox in received.values())

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            SplitVoteAdversary(budget_per_receiver=-1, value_a=0, value_b=1)

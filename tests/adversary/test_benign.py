"""Tests for the benign (omission-only) adversaries."""

import pytest

from repro.adversary.benign import (
    BoundedOmissionAdversary,
    CrashAdversary,
    PartitionAdversary,
    RandomOmissionAdversary,
    SilentSendersAdversary,
)


def intended_matrix(n, value=0):
    return {sender: {receiver: value for receiver in range(n)} for sender in range(n)}


def corruption_count(intended, received):
    count = 0
    for receiver, inbox in received.items():
        for sender, payload in inbox.items():
            if payload != intended[sender][receiver]:
                count += 1
    return count


class TestRandomOmission:
    def test_probability_validation(self):
        with pytest.raises(ValueError):
            RandomOmissionAdversary(drop_probability=1.5)

    def test_zero_probability_is_reliable(self):
        adversary = RandomOmissionAdversary(drop_probability=0.0, seed=1)
        received = adversary.deliver_round(1, intended_matrix(4))
        assert all(len(inbox) == 4 for inbox in received.values())

    def test_one_probability_drops_everything(self):
        adversary = RandomOmissionAdversary(drop_probability=1.0, seed=1)
        received = adversary.deliver_round(1, intended_matrix(4))
        assert all(len(inbox) == 0 for inbox in received.values())

    def test_never_corrupts(self):
        adversary = RandomOmissionAdversary(drop_probability=0.5, seed=3)
        intended = intended_matrix(6, value=7)
        received = adversary.deliver_round(1, intended)
        assert corruption_count(intended, received) == 0

    def test_deterministic_given_seed(self):
        a = RandomOmissionAdversary(drop_probability=0.5, seed=42)
        b = RandomOmissionAdversary(drop_probability=0.5, seed=42)
        assert a.deliver_round(1, intended_matrix(5)) == b.deliver_round(1, intended_matrix(5))

    def test_reset_replays_schedule(self):
        adversary = RandomOmissionAdversary(drop_probability=0.5, seed=42)
        first = adversary.deliver_round(1, intended_matrix(5))
        adversary.reset()
        second = adversary.deliver_round(1, intended_matrix(5))
        assert first == second


class TestCrashAdversary:
    def test_silent_from_crash_round_on(self):
        adversary = CrashAdversary({1: 3})
        for round_num in (1, 2):
            received = adversary.deliver_round(round_num, intended_matrix(3))
            assert all(1 in inbox for inbox in received.values())
        for round_num in (3, 4):
            received = adversary.deliver_round(round_num, intended_matrix(3))
            assert all(1 not in inbox for inbox in received.values())


class TestSilentSenders:
    def test_silent_set_never_heard(self):
        adversary = SilentSendersAdversary(silent=[0, 2])
        received = adversary.deliver_round(5, intended_matrix(4))
        for inbox in received.values():
            assert set(inbox) == {1, 3}


class TestPartitionAdversary:
    def test_messages_stay_within_groups(self):
        adversary = PartitionAdversary([[0, 1], [2, 3]])
        received = adversary.deliver_round(1, intended_matrix(4))
        assert set(received[0]) == {0, 1}
        assert set(received[3]) == {2, 3}

    def test_overlapping_groups_rejected(self):
        with pytest.raises(ValueError):
            PartitionAdversary([[0, 1], [1, 2]])

    def test_unlisted_processes_are_isolated(self):
        adversary = PartitionAdversary([[0, 1]])
        received = adversary.deliver_round(1, intended_matrix(3))
        assert set(received[2]) == set()


class TestBoundedOmission:
    def test_per_receiver_budget_respected(self):
        adversary = BoundedOmissionAdversary(max_omissions_per_receiver=2, seed=1)
        intended = intended_matrix(6)
        received = adversary.deliver_round(1, intended)
        for inbox in received.values():
            assert len(inbox) >= 6 - 2

    def test_budget_resets_every_round(self):
        adversary = BoundedOmissionAdversary(max_omissions_per_receiver=1, seed=1)
        for round_num in (1, 2, 3):
            received = adversary.deliver_round(round_num, intended_matrix(4))
            for inbox in received.values():
                assert len(inbox) >= 3

    def test_validation(self):
        with pytest.raises(ValueError):
            BoundedOmissionAdversary(max_omissions_per_receiver=-1)
        with pytest.raises(ValueError):
            BoundedOmissionAdversary(max_omissions_per_receiver=1, drop_probability=2.0)

"""Unit tests for the RNG bridge: bit-exact state sharing with NumPy.

The whole batch-planning tier rests on one claim — a ``random.Random``
whose stream was partly consumed through the bridge or a word stream is
*indistinguishable* from one driven scalar-only.  These tests pin that
claim directly: identical draw values, identical word consumption,
identical ``getstate()`` after flushing, across seed widths and
interleavings, plus a Hypothesis sweep over random draw scripts.
"""

from __future__ import annotations

import random

import pytest

np = pytest.importorskip("numpy")

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adversary.rng_bridge import (
    RngBridge,
    WordStream,
    chain_values_many,
    chain_walk_many,
    chain_walk_many_array,
    numpy_available,
    word_replay_matches,
)

#: Seeds spanning int widths (32-bit, > 2**32, bytes) — ``random.Random``
#: hashes them differently, so each exercises a distinct MT init path.
SEEDS = [42, 2**40 + 17, b"byte-seed"]


def twins(seed):
    return random.Random(seed), random.Random(seed)


class TestModuleGates:
    def test_numpy_available_here(self):
        assert numpy_available()

    def test_word_replay_matches_on_this_interpreter(self):
        assert word_replay_matches()


class TestRngBridge:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_random_block_equals_scalar_stream(self, seed):
        reference, mirror = twins(seed)
        bridge = RngBridge(mirror)
        block = bridge.random_block(64)
        assert block.tolist() == [reference.random() for _ in range(64)]

    @pytest.mark.parametrize("seed", SEEDS)
    def test_flush_round_trip_is_indistinguishable(self, seed):
        reference, mirror = twins(seed)
        bridge = RngBridge(mirror)
        bridge.random_block((4, 4))
        for _ in range(16):
            reference.random()
        assert bridge.flush().getstate() == reference.getstate()
        # And draws after the round trip keep agreeing.
        assert mirror.random() == reference.random()
        assert mirror.randint(0, 99) == reference.randint(0, 99)

    def test_gauss_cache_survives_the_bridge(self):
        reference, mirror = twins(7)
        reference.gauss(0, 1)
        mirror.gauss(0, 1)  # both now hold a cached second variate
        bridge = RngBridge(mirror)
        bridge.random_block(8)
        for _ in range(8):
            reference.random()
        bridge.flush()
        assert mirror.gauss(0, 1) == reference.gauss(0, 1)
        assert mirror.getstate() == reference.getstate()

    def test_interleaved_scalar_and_vector_draws(self):
        reference, mirror = twins(123)
        bridge = RngBridge(mirror)
        out = []
        for width in (3, 1, 17, 5):
            out.extend(bridge.random_block(width).tolist())
            out.append(bridge.scalar().randint(0, 1000))
            out.append(bridge.scalar().random())
        expected = []
        for width in (3, 1, 17, 5):
            expected.extend(reference.random() for _ in range(width))
            expected.append(reference.randint(0, 1000))
            expected.append(reference.random())
        assert out == expected
        assert bridge.flush().getstate() == reference.getstate()


class TestWordStream:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_scalar_ports_match_cpython(self, seed):
        reference, mirror = twins(seed)
        stream = WordStream(mirror)
        population = list(range(31))
        for k in (1, 3, 7, 6, 2):
            assert stream.random() == reference.random()
            assert stream.getrandbits(11) == reference.getrandbits(11)
            assert stream.randint(-5, 90) == reference.randint(-5, 90)
            assert stream.sample(population, k) == reference.sample(population, k)
            assert stream.choice(population) == reference.choice(population)
        assert stream.flush().getstate() == reference.getstate()

    @pytest.mark.parametrize("seed", SEEDS)
    def test_chain_values_matches_randrange_chains(self, seed):
        reference, mirror = twins(seed)
        stream = WordStream(mirror)
        assert stream.chain_values(40, 13) == [
            reference.randrange(13) for _ in range(40)
        ]
        assert stream.flush().getstate() == reference.getstate()

    @pytest.mark.parametrize("seed", SEEDS)
    def test_chain_walk_matches_skip_then_chain_pattern(self, seed):
        reference, mirror = twins(seed)
        stream = WordStream(mirror)
        walked = stream.chain_walk(12, 2, (1, 23))
        expected = []
        for _ in range(12):
            reference.random()  # two skipped words
            low = reference.randint(1, 1) - 1
            expected.append((low, reference.randrange(23)))
        assert walked == expected
        assert stream.flush().getstate() == reference.getstate()

    def test_flush_discards_unconsumed_prefetch(self):
        reference, mirror = twins(99)
        stream = WordStream(mirror)
        stream.random()  # triggers a large prefetch, consumes two words
        reference.random()
        assert stream.flush().getstate() == reference.getstate()

    def test_flush_without_draws_is_a_no_op(self):
        reference, mirror = twins(5)
        stream = WordStream(mirror)
        assert stream.flush().getstate() == reference.getstate()

    def test_fleet_decoders_match_per_stream_results(self):
        mirrors = [random.Random(seed) for seed in (1, 2, 3)]
        references = [random.Random(seed) for seed in (1, 2, 3)]
        streams = [WordStream(rng) for rng in mirrors]
        walked = chain_walk_many(streams, 6, 2, (1, 9))
        values = chain_values_many(streams, [5, 5, 5], 4)
        for reference, row, vals in zip(references, walked, values):
            expected_row = []
            for _ in range(6):
                reference.random()
                low = reference.randint(1, 1) - 1
                expected_row.append((low, reference.randrange(9)))
            assert row == expected_row
            assert vals == [reference.randrange(4) for _ in range(5)]
        for reference, stream, mirror in zip(references, streams, mirrors):
            stream.flush()
            assert mirror.getstate() == reference.getstate()

    def test_chain_walk_many_array_shape_and_values(self):
        streams = [WordStream(random.Random(seed)) for seed in (11, 12)]
        picks = chain_walk_many_array(streams, 4, 2, (1, 7))
        assert picks.shape == (2, 4, 2)
        assert picks.dtype == np.int64
        assert (picks[:, :, 0] == 0).all()  # bound-1 chains only draw 0
        assert ((0 <= picks[:, :, 1]) & (picks[:, :, 1] < 7)).all()


@settings(max_examples=60, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**64),
    script=st.lists(
        st.one_of(
            st.tuples(st.just("random"), st.just(0)),
            st.tuples(st.just("getrandbits"), st.integers(1, 32)),
            st.tuples(st.just("randint"), st.integers(1, 1000)),
            st.tuples(st.just("sample"), st.integers(1, 8)),
            st.tuples(st.just("block"), st.integers(1, 40)),
            st.tuples(st.just("chain"), st.integers(1, 30)),
        ),
        min_size=1,
        max_size=24,
    ),
)
def test_property_streams_are_indistinguishable(seed, script):
    """Any interleaving of scalar/vector draws leaves the generator
    exactly where the scalar-only twin ends up, with identical values."""
    reference = random.Random(seed)
    mirror = random.Random(seed)
    stream = WordStream(mirror)
    population = list(range(40))
    for op, arg in script:
        if op == "random":
            assert stream.random() == reference.random()
        elif op == "getrandbits":
            assert stream.getrandbits(arg) == reference.getrandbits(arg)
        elif op == "randint":
            assert stream.randint(0, arg) == reference.randint(0, arg)
        elif op == "sample":
            assert stream.sample(population, arg) == reference.sample(population, arg)
        elif op == "block":
            # random() doubles are two words each, so a block draw and a
            # scalar loop consume identically.
            got = [stream.random() for _ in range(arg)]
            assert got == [reference.random() for _ in range(arg)]
        elif op == "chain":
            assert stream.chain_values(arg, 13) == [
                reference.randrange(13) for _ in range(arg)
            ]
    assert stream.flush().getstate() == reference.getstate()

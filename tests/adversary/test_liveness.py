"""Tests for the liveness-structured adversary wrappers (Figures 1 and 2)."""

from repro.adversary.base import ReliableAdversary
from repro.adversary.corruption import UnboundedCorruptionAdversary
from repro.adversary.liveness import (
    PartialGoodRoundAdversary,
    PeriodicGoodPhaseAdversary,
    PeriodicGoodRoundAdversary,
)


def intended_matrix(n, value=0):
    return {sender: {receiver: value for receiver in range(n)} for sender in range(n)}


def corruption_count(intended, received):
    return sum(
        1
        for receiver, inbox in received.items()
        for sender, payload in inbox.items()
        if payload != intended[sender][receiver]
    )


class TestPeriodicGoodRound:
    def test_good_rounds_are_perfect(self):
        n = 5
        inner = UnboundedCorruptionAdversary(corruption_probability=1.0, seed=1)
        adversary = PeriodicGoodRoundAdversary(inner=inner, period=3)
        intended = intended_matrix(n, value=2)
        for round_num in range(1, 10):
            received = adversary.deliver_round(round_num, intended)
            corruptions = corruption_count(intended, received)
            if round_num % 3 == 0:
                assert corruptions == 0
                assert all(len(inbox) == n for inbox in received.values())
            else:
                assert corruptions > 0

    def test_period_one_is_always_good(self):
        inner = UnboundedCorruptionAdversary(corruption_probability=1.0, seed=1)
        adversary = PeriodicGoodRoundAdversary(inner=inner, period=1)
        intended = intended_matrix(4, value=2)
        for round_num in range(1, 5):
            assert corruption_count(intended, adversary.deliver_round(round_num, intended)) == 0

    def test_offset_moves_good_rounds(self):
        inner = UnboundedCorruptionAdversary(corruption_probability=1.0, seed=1)
        adversary = PeriodicGoodRoundAdversary(inner=inner, period=4, offset=2)
        assert adversary.is_good_round(2)
        assert adversary.is_good_round(6)
        assert not adversary.is_good_round(4)


class TestPartialGoodRound:
    def test_pi1_hears_exactly_pi2_on_good_rounds(self):
        n = 6
        inner = UnboundedCorruptionAdversary(corruption_probability=1.0, seed=1)
        pi1 = [0, 1, 2, 3]
        pi2 = [0, 1, 2, 3, 4]
        adversary = PartialGoodRoundAdversary(inner=inner, pi1=pi1, pi2=pi2, period=2)
        intended = intended_matrix(n, value=9)
        received = adversary.deliver_round(2, intended)
        for receiver in pi1:
            assert set(received[receiver]) == set(pi2)
            assert all(payload == 9 for payload in received[receiver].values())
        # Processes outside pi1 remain at the inner adversary's mercy.
        assert corruption_count(intended, {5: received[5]}) > 0

    def test_non_good_rounds_delegate_to_inner(self):
        n = 4
        inner = UnboundedCorruptionAdversary(corruption_probability=1.0, seed=1)
        adversary = PartialGoodRoundAdversary(inner=inner, pi1=[0], pi2=[0, 1, 2], period=5)
        intended = intended_matrix(n, value=9)
        received = adversary.deliver_round(1, intended)
        assert corruption_count(intended, received) > 0


class TestPeriodicGoodPhase:
    def test_good_window_covers_three_rounds(self):
        inner = UnboundedCorruptionAdversary(corruption_probability=1.0, seed=1)
        adversary = PeriodicGoodPhaseAdversary(inner=inner, period=2, offset=1)
        # phi0 = 1 -> rounds 2, 3, 4 are good; phi0 = 3 -> rounds 6, 7, 8.
        assert adversary.is_good_round(2)
        assert adversary.is_good_round(3)
        assert adversary.is_good_round(4)
        assert not adversary.is_good_round(5)
        assert adversary.is_good_round(6)

    def test_good_rounds_are_perfect_and_bad_rounds_are_not(self):
        n = 4
        inner = UnboundedCorruptionAdversary(corruption_probability=1.0, seed=1)
        adversary = PeriodicGoodPhaseAdversary(inner=inner, period=3, offset=1)
        intended = intended_matrix(n, value=2)
        assert corruption_count(intended, adversary.deliver_round(2, intended)) == 0
        assert corruption_count(intended, adversary.deliver_round(5, intended)) > 0

    def test_wrapping_reliable_inner_stays_reliable(self):
        adversary = PeriodicGoodPhaseAdversary(inner=ReliableAdversary(), period=2)
        intended = intended_matrix(3, value=1)
        for round_num in range(1, 8):
            assert corruption_count(intended, adversary.deliver_round(round_num, intended)) == 0

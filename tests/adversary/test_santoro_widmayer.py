"""Tests for the Santoro–Widmayer block-fault adversary."""

import pytest

from repro.adversary.santoro_widmayer import BlockFaultAdversary, santoro_widmayer_bound


def intended_matrix(n, value=0):
    return {sender: {receiver: value for receiver in range(n)} for sender in range(n)}


def faulty_edges(intended, received):
    """(sender, receiver) pairs whose message was dropped or corrupted."""
    edges = []
    for sender, per_receiver in intended.items():
        for receiver, payload in per_receiver.items():
            got = received.get(receiver, {}).get(sender)
            if got is None or got != payload:
                edges.append((sender, receiver))
    return edges


class TestBound:
    def test_floor_n_over_two(self):
        assert santoro_widmayer_bound(10) == 5
        assert santoro_widmayer_bound(9) == 4
        assert santoro_widmayer_bound(3) == 1


class TestBlockFaultAdversary:
    def test_validation(self):
        with pytest.raises(ValueError):
            BlockFaultAdversary(mode="explode")
        with pytest.raises(ValueError):
            BlockFaultAdversary(faults_per_round=-1)

    def test_all_faults_from_single_victim_per_round(self):
        n = 8
        adversary = BlockFaultAdversary(faults_per_round=n // 2, seed=1)
        intended = intended_matrix(n, value=3)
        for round_num in range(1, 10):
            received = adversary.deliver_round(round_num, intended)
            edges = faulty_edges(intended, received)
            senders = {sender for sender, _ in edges}
            assert len(senders) <= 1  # block structure: one victim per round
            assert len(edges) <= n // 2

    def test_victim_rotates_round_robin_by_default(self):
        n = 4
        adversary = BlockFaultAdversary(faults_per_round=2, seed=1)
        intended = intended_matrix(n, value=3)
        victims = []
        for round_num in range(1, 5):
            received = adversary.deliver_round(round_num, intended)
            edges = faulty_edges(intended, received)
            victims.append(edges[0][0] if edges else None)
        assert victims == [0, 1, 2, 3]

    def test_explicit_victim_schedule(self):
        n = 4
        adversary = BlockFaultAdversary(faults_per_round=1, victim_schedule=[2, 2, 3], seed=1)
        intended = intended_matrix(n, value=3)
        observed = []
        for round_num in range(1, 4):
            received = adversary.deliver_round(round_num, intended)
            edges = faulty_edges(intended, received)
            observed.append(edges[0][0])
        assert observed == [2, 2, 3]

    def test_drop_mode_produces_omissions(self):
        n = 6
        adversary = BlockFaultAdversary(faults_per_round=3, mode="drop", seed=1)
        intended = intended_matrix(n, value=3)
        received = adversary.deliver_round(1, intended)
        corrupted = sum(
            1
            for receiver, inbox in received.items()
            for sender, payload in inbox.items()
            if payload != 3
        )
        dropped = sum(6 - len(inbox) for inbox in received.values())
        assert corrupted == 0
        assert dropped == 3

    def test_corrupt_mode_produces_value_faults(self):
        n = 6
        adversary = BlockFaultAdversary(faults_per_round=3, mode="corrupt", value_domain=(0, 1), seed=1)
        intended = intended_matrix(n, value=0)
        received = adversary.deliver_round(1, intended)
        corrupted = sum(
            1
            for receiver, inbox in received.items()
            for sender, payload in inbox.items()
            if payload != 0
        )
        assert corrupted == 3
        assert all(len(inbox) == n for inbox in received.values())

    def test_none_faults_per_round_hits_all_outgoing_links(self):
        n = 5
        adversary = BlockFaultAdversary(faults_per_round=None, mode="drop", seed=1)
        intended = intended_matrix(n, value=3)
        received = adversary.deliver_round(1, intended)
        # Victim of round 1 is process 0: nobody hears from it.
        assert all(0 not in inbox for inbox in received.values())

"""Shared fixtures and helpers for the test-suite."""

from __future__ import annotations

import pytest

from repro.core.heardof import HeardOfCollection, ReceptionVector, RoundRecord


def make_reception_vector(receiver, intended, received):
    """Build a ReceptionVector from plain dicts (helper used across tests)."""
    return ReceptionVector(receiver=receiver, received=received, intended=intended)


def make_round(round_num, n, received_by, intended_value=0, intended_by=None):
    """Build a RoundRecord for ``n`` processes.

    ``received_by`` maps receiver -> {sender: payload}.  ``intended_by``
    (optional) maps sender -> payload; defaults to every sender intending
    ``intended_value`` for every receiver.
    """
    receptions = {}
    for receiver in range(n):
        intended = {
            sender: (intended_by[sender] if intended_by is not None else intended_value)
            for sender in range(n)
        }
        receptions[receiver] = ReceptionVector(
            receiver=receiver,
            received=dict(received_by.get(receiver, {})),
            intended=intended,
        )
    return RoundRecord(round_num=round_num, receptions=receptions)


def perfect_round(round_num, n, value=0):
    """A round where everyone receives ``value`` from everyone, uncorrupted."""
    received_by = {receiver: {sender: value for sender in range(n)} for receiver in range(n)}
    return make_round(round_num, n, received_by, intended_value=value)


def collection_of(n, rounds):
    return HeardOfCollection(n, rounds)


@pytest.fixture
def small_n():
    return 6


@pytest.fixture
def perfect_collection():
    """Three perfect rounds for n = 4."""
    n = 4
    return HeardOfCollection(n, [perfect_round(r, n) for r in (1, 2, 3)])

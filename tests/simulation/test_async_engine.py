"""Tests for the asyncio engine: same HO semantics over an asynchronous transport."""

import asyncio

from repro.adversary import RandomCorruptionAdversary, RandomOmissionAdversary, ReliableAdversary
from repro.algorithms import AteAlgorithm, UteAlgorithm
from repro.simulation.async_engine import (
    AsyncSimulationConfig,
    run_algorithm_async,
    run_consensus_async,
)
from repro.simulation.engine import run_consensus
from repro.simulation.network import UniformDelay
from repro.workloads import generators


class TestAsyncEngine:
    def test_fault_free_consensus(self):
        n = 6
        result = run_consensus_async(
            AteAlgorithm.symmetric(n=n, alpha=0),
            generators.split(n),
            ReliableAdversary(),
            max_rounds=10,
        )
        assert result.all_satisfied
        assert result.metadata["engine"] == "asyncio"

    def test_matches_lockstep_engine_given_same_seeds(self):
        """Both engines produce identical decisions, rounds and heard-of statistics."""
        n = 7
        workload = generators.uniform_random(n, seed=3)
        sync_result = run_consensus(
            AteAlgorithm.symmetric(n=n, alpha=1),
            workload,
            RandomCorruptionAdversary(alpha=1, value_domain=(0, 1), seed=21),
            max_rounds=30,
        )
        async_result = run_consensus_async(
            AteAlgorithm.symmetric(n=n, alpha=1),
            workload,
            RandomCorruptionAdversary(alpha=1, value_domain=(0, 1), seed=21),
            max_rounds=30,
        )
        assert sync_result.outcome.decision_values == async_result.outcome.decision_values
        assert sync_result.outcome.decision_rounds == async_result.outcome.decision_rounds
        assert sync_result.rounds_executed == async_result.rounds_executed
        assert (
            sync_result.metrics.messages_corrupted == async_result.metrics.messages_corrupted
        )
        assert sync_result.metrics.messages_dropped == async_result.metrics.messages_dropped

    def test_network_delays_do_not_change_outcomes(self):
        n = 6
        workload = generators.split(n)
        no_delay = run_consensus_async(
            AteAlgorithm.symmetric(n=n, alpha=0), workload, max_rounds=10
        )
        delayed = run_consensus_async(
            AteAlgorithm.symmetric(n=n, alpha=0),
            workload,
            max_rounds=10,
            delay_model=UniformDelay(0.0, 0.002),
            network_seed=4,
        )
        assert no_delay.outcome.decision_values == delayed.outcome.decision_values
        assert no_delay.outcome.decision_rounds == delayed.outcome.decision_rounds

    def test_phase_based_algorithm(self):
        n = 8
        result = run_consensus_async(
            UteAlgorithm.minimal(n=n, alpha=1),
            generators.split(n),
            RandomCorruptionAdversary(alpha=1, value_domain=(0, 1), seed=6),
            max_rounds=30,
            delay_model=UniformDelay(0.0, 0.001),
            network_seed=2,
        )
        assert result.safe

    def test_stops_at_max_rounds_without_termination(self):
        n = 6
        result = run_consensus_async(
            AteAlgorithm.symmetric(n=n, alpha=0),
            generators.split(n),
            RandomOmissionAdversary(drop_probability=1.0, seed=1),
            max_rounds=5,
        )
        assert result.rounds_executed == 5
        assert not result.termination

    def test_run_algorithm_async_inside_event_loop(self):
        n = 5

        async def driver():
            return await run_algorithm_async(
                AteAlgorithm.symmetric(n=n, alpha=0),
                generators.unanimous(n, value=2),
                ReliableAdversary(),
                config=AsyncSimulationConfig(max_rounds=5),
            )

        result = asyncio.run(driver())
        assert result.all_satisfied
        assert result.outcome.decision_values == (2,)

    def test_collection_round_count_matches(self):
        n = 5
        result = run_consensus_async(
            AteAlgorithm.symmetric(n=n, alpha=0), generators.split(n), max_rounds=8
        )
        assert result.collection.num_rounds == result.rounds_executed


class TestDefaultNetworkSeed:
    """With network_seed=None the seed is derived from the run's adversary
    seed (same SHA-256 scheme as the runner's per-run seeds), so async
    runs are reproducible by default."""

    def test_derivation_matches_runner_scheme(self):
        from repro.runner.spec import derive_seed
        from repro.simulation.async_engine import derive_network_seed

        assert derive_network_seed(21) == derive_seed(21, "async-network", 0)
        assert derive_network_seed(None) == derive_seed(0, "async-network", 0)
        # Different run seeds give different network seeds.
        assert derive_network_seed(1) != derive_network_seed(2)

    def _run(self, seed):
        n = 6
        return run_consensus_async(
            AteAlgorithm.symmetric(n=n, alpha=0),
            generators.uniform_random(n, seed=4),
            RandomOmissionAdversary(0.2, seed=seed),
            max_rounds=20,
            delay_model=UniformDelay(0.0, 0.001),
            network_seed=None,
        )

    def test_async_runs_reproducible_by_default(self):
        first = self._run(seed=9)
        second = self._run(seed=9)
        assert first.outcome.decision_rounds == second.outcome.decision_rounds
        assert first.rounds_executed == second.rounds_executed
        for round_first, round_second in zip(first.collection, second.collection):
            for pid in range(first.collection.n):
                assert round_first.ho(pid) == round_second.ho(pid)
                assert round_first.sho(pid) == round_second.sho(pid)

    def test_explicit_network_seed_still_wins(self):
        n = 5
        config = AsyncSimulationConfig(
            max_rounds=10, record_states=False, network_seed=123
        )
        result = asyncio.run(
            run_algorithm_async(
                AteAlgorithm.symmetric(n=n, alpha=0),
                generators.split(n),
                ReliableAdversary(),
                config=config,
            )
        )
        assert result.all_satisfied

"""Tests for run metrics."""

from repro.core.heardof import HeardOfCollection
from repro.simulation.metrics import RunMetrics, metrics_from_collection
from tests.conftest import make_round, perfect_round


class TestRunMetrics:
    def test_rates_with_no_messages(self):
        metrics = RunMetrics(n=4)
        assert metrics.corruption_rate == 0.0
        assert metrics.omission_rate == 0.0
        assert metrics.first_decision_round is None
        assert not metrics.all_decided

    def test_derived_properties(self):
        metrics = RunMetrics(
            n=3,
            rounds_executed=4,
            messages_sent=36,
            messages_delivered=30,
            messages_dropped=6,
            messages_corrupted=9,
            decision_rounds={0: 2, 1: 3, 2: 4},
        )
        assert metrics.first_decision_round == 2
        assert metrics.last_decision_round == 4
        assert metrics.decided_count == 3
        assert metrics.all_decided
        assert metrics.corruption_rate == 0.25
        assert abs(metrics.omission_rate - 6 / 36) < 1e-12

    def test_as_dict_round_trips_key_fields(self):
        metrics = RunMetrics(n=2, rounds_executed=1, messages_sent=4)
        data = metrics.as_dict()
        assert data["n"] == 2 and data["messages_sent"] == 4


class TestMetricsFromCollection:
    def test_counts_from_perfect_collection(self):
        n = 4
        collection = HeardOfCollection(n, [perfect_round(r, n) for r in (1, 2)])
        metrics = metrics_from_collection(collection, {0: 2, 1: 2, 2: 2, 3: 2})
        assert metrics.messages_sent == n * n * 2
        assert metrics.messages_dropped == 0
        assert metrics.messages_corrupted == 0
        assert metrics.all_decided

    def test_counts_faults(self):
        n = 3
        received_by = {
            0: {0: 0, 1: 99, 2: 0},  # 1 corruption
            1: {0: 0, 1: 0},          # 1 omission
            2: {0: 0, 1: 0, 2: 0},
        }
        collection = HeardOfCollection(n, [make_round(1, n, received_by, intended_value=0)])
        metrics = metrics_from_collection(collection, {})
        assert metrics.messages_sent == 9
        assert metrics.messages_corrupted == 1
        assert metrics.messages_dropped == 1
        assert metrics.messages_delivered == 8
        assert metrics.corruption_per_round == [1]
        assert metrics.omission_per_round == [1]
        assert not metrics.all_decided

"""Tests for the asynchronous network transport and delay models."""

import asyncio
import random

import pytest

from repro.simulation.network import (
    AsyncNetwork,
    ExponentialDelay,
    NetworkMessage,
    NoDelay,
    UniformDelay,
)


class TestDelayModels:
    def test_no_delay(self):
        assert NoDelay().sample(random.Random(0)) == 0.0

    def test_uniform_delay_bounds(self):
        model = UniformDelay(0.001, 0.002)
        rng = random.Random(1)
        for _ in range(50):
            assert 0.001 <= model.sample(rng) <= 0.002

    def test_uniform_delay_validation(self):
        with pytest.raises(ValueError):
            UniformDelay(0.5, 0.1)
        with pytest.raises(ValueError):
            UniformDelay(-0.1, 0.1)

    def test_exponential_delay_positive(self):
        model = ExponentialDelay(mean=0.001)
        rng = random.Random(1)
        assert all(model.sample(rng) >= 0 for _ in range(20))
        with pytest.raises(ValueError):
            ExponentialDelay(mean=0)

    def test_describe(self):
        assert "uniform" in UniformDelay(0, 1).describe()
        assert "exponential" in ExponentialDelay(1).describe()


class TestAsyncNetwork:
    def test_validation(self):
        with pytest.raises(ValueError):
            AsyncNetwork(0)

    def test_collect_round_returns_messages_until_marker(self):
        async def scenario():
            network = AsyncNetwork(3)
            await network.send(NetworkMessage(sender=1, receiver=0, round_num=1, payload="a"))
            await network.send(NetworkMessage(sender=2, receiver=0, round_num=1, payload="b"))
            await network.close_round(0, 1)
            return await network.collect_round(0, 1)

        received = asyncio.run(scenario())
        assert received == {1: "a", 2: "b"}

    def test_wrong_round_message_raises(self):
        async def scenario():
            network = AsyncNetwork(2)
            await network.send(NetworkMessage(sender=1, receiver=0, round_num=2, payload="x"))
            await network.close_round(0, 1)
            return await network.collect_round(0, 1)

        with pytest.raises(RuntimeError):
            asyncio.run(scenario())

    def test_wrong_end_of_round_marker_raises(self):
        async def scenario():
            network = AsyncNetwork(2)
            await network.close_round(0, 7)
            return await network.collect_round(0, 1)

        with pytest.raises(RuntimeError):
            asyncio.run(scenario())

    def test_delivered_count_increments(self):
        async def scenario():
            network = AsyncNetwork(2, delay_model=UniformDelay(0, 0.0005), seed=1)
            await network.send(NetworkMessage(sender=0, receiver=1, round_num=1, payload="x"))
            await network.send(NetworkMessage(sender=1, receiver=1, round_num=1, payload="y"))
            return network.delivered_count

        assert asyncio.run(scenario()) == 2

"""Tests for the pluggable engine-backend protocol and its plumbing."""

import pytest

from repro.adversary import ReliableAdversary
from repro.algorithms import AteAlgorithm, PhaseKingAlgorithm, supports_fast
from repro.runner import AdversarySpec, AlgorithmSpec, CampaignRunner, CampaignSpec
from repro.simulation import (
    SimulationConfig,
    available_backends,
    fast_supported,
    get_backend,
    run_algorithm_fast,
    run_simulation,
)
from repro.workloads import generators


def _config(**kwargs):
    kwargs.setdefault("max_rounds", 20)
    kwargs.setdefault("record_states", False)
    return SimulationConfig(**kwargs)


class TestBackendRegistry:
    def test_available_backends(self):
        assert available_backends() == ["async", "batch", "fast", "reference"]

    def test_get_backend(self):
        assert get_backend("fast").name == "fast"
        assert get_backend("reference").fallback is None
        assert get_backend("fast").fallback == "reference"

    def test_unknown_backend_suggestion(self):
        with pytest.raises(ValueError, match="did you mean 'fast'"):
            get_backend("fsat")
        with pytest.raises(ValueError, match="available: async, batch, fast, reference"):
            get_backend("gpu")


class TestRunSimulationDispatch:
    def test_reference_is_default(self):
        result = run_simulation(
            AteAlgorithm.symmetric(n=5, alpha=0),
            generators.split(5),
            ReliableAdversary(),
            _config(),
        )
        assert result.metadata.get("engine") is None
        assert result.agreement

    def test_fast_backend_engages(self):
        result = run_simulation(
            AteAlgorithm.symmetric(n=5, alpha=0),
            generators.split(5),
            ReliableAdversary(),
            _config(),
            backend="fast",
        )
        assert result.metadata.get("engine") == "fast"
        assert result.agreement

    def test_fast_falls_back_without_kernel(self):
        result = run_simulation(
            PhaseKingAlgorithm(n=5, f=1),
            generators.split(5),
            ReliableAdversary(),
            _config(),
            backend="fast",
        )
        assert result.metadata.get("engine") is None  # reference executed it

    def test_fast_falls_back_with_record_states(self):
        result = run_simulation(
            AteAlgorithm.symmetric(n=5, alpha=0),
            generators.split(5),
            ReliableAdversary(),
            _config(record_states=True),
            backend="fast",
        )
        assert result.metadata.get("engine") is None
        # The reference engine recorded snapshots, as requested.
        assert result.collection[1].states_after

    def test_fast_falls_back_with_observers(self):
        seen = []

        class Observer:
            def on_round(self, record, processes):
                seen.append(record.round_num)

        result = run_simulation(
            AteAlgorithm.symmetric(n=5, alpha=0),
            generators.split(5),
            ReliableAdversary(),
            _config(),
            observers=[Observer()],
            backend="fast",
        )
        assert result.metadata.get("engine") is None
        assert seen  # observers ran on the reference engine

    def test_async_backend(self):
        result = run_simulation(
            AteAlgorithm.symmetric(n=4, alpha=0),
            generators.split(4),
            ReliableAdversary(),
            _config(),
            backend="async",
        )
        assert result.metadata.get("engine") == "asyncio"
        assert result.agreement

    def test_async_backend_rejects_record_states(self):
        # The async coordinator never records states_after, so claiming
        # a record_states run would silently return incomplete records.
        with pytest.raises(ValueError, match="does not support"):
            run_simulation(
                AteAlgorithm.symmetric(n=4, alpha=0),
                generators.split(4),
                ReliableAdversary(),
                _config(record_states=True),
                backend="async",
            )

    def test_unknown_backend_raises(self):
        with pytest.raises(ValueError, match="unknown engine backend"):
            run_simulation(
                AteAlgorithm.symmetric(n=4, alpha=0),
                generators.split(4),
                backend="quantum",
            )


class TestFastSupported:
    def test_supported(self):
        assert fast_supported(AteAlgorithm.symmetric(n=4), config=_config())

    def test_unsupported_cases(self):
        assert not fast_supported(PhaseKingAlgorithm(n=4, f=1), config=_config())
        assert not fast_supported(AteAlgorithm.symmetric(n=4), config=None)
        assert not fast_supported(
            AteAlgorithm.symmetric(n=4), config=_config(record_states=True)
        )
        assert not fast_supported(
            AteAlgorithm.symmetric(n=4), config=_config(), observers=[object()]
        )

    def test_run_algorithm_fast_rejects_unsupported(self):
        with pytest.raises(ValueError, match="not fast-capable"):
            run_algorithm_fast(
                PhaseKingAlgorithm(n=4, f=1),
                generators.split(4),
                config=_config(),
            )

    def test_registry_advertises_kernels(self):
        assert supports_fast("ate")
        assert supports_fast("ute")
        assert supports_fast("one-third-rule")
        assert supports_fast("uniform-voting")
        assert not supports_fast("phase-king")


class TestRunnerBackendPlumbing:
    def _spec(self, backend=None):
        return CampaignSpec(
            campaign_id="backend-test",
            algorithms=[AlgorithmSpec("ate", {"alpha": 1})],
            adversaries=[AdversarySpec("random-corruption", {"alpha": 1})],
            ns=[6],
            runs=3,
            base_seed=5,
            max_rounds=20,
            backend=backend,
        )

    def test_runner_rejects_unknown_backend(self):
        with pytest.raises(ValueError, match="unknown engine backend"):
            CampaignRunner(backend="warp")

    def test_campaign_results_identical_across_backends(self):
        rows = {}
        for backend in ("reference", "fast"):
            result = CampaignRunner(backend=backend).run_campaign(self._spec())
            rows[backend] = [record.as_dict() for record in result.records]
        assert rows["reference"] == rows["fast"]

    def test_spec_rejects_unknown_backend_at_load_time(self, tmp_path):
        spec = self._spec()
        path = tmp_path / "spec.json"
        spec.to_json(path)
        import json

        data = json.loads(path.read_text())
        data["backend"] = "fsat"
        path.write_text(json.dumps(data))
        with pytest.raises(ValueError, match="did you mean 'fast'"):
            CampaignSpec.from_json(path)

    def test_run_spec_and_task_reject_unknown_backend(self):
        from repro.runner import RunTask
        from repro.runner.spec import WorkloadSpec

        with pytest.raises(ValueError, match="unknown engine backend"):
            CampaignSpec(
                campaign_id="x",
                algorithms=[AlgorithmSpec("ate")],
                adversaries=[AdversarySpec("reliable")],
                ns=[4],
                backend="fsat",
            )
        from repro.runner.spec import RunSpec

        with pytest.raises(ValueError, match="unknown engine backend"):
            RunSpec(
                algorithm=AlgorithmSpec("ate"),
                adversary=AdversarySpec("reliable"),
                workload=WorkloadSpec(),
                n=4,
                seed=0,
                run_index=0,
                backend="fsat",
            )
        with pytest.raises(ValueError, match="unknown engine backend"):
            RunTask(
                algorithm=AteAlgorithm.symmetric(n=4),
                adversary=ReliableAdversary(),
                initial_values=generators.split(4),
                backend="fsat",
            )

    def test_supports_fast_tracks_kernel_registrations(self):
        from repro.algorithms import PhaseKingAlgorithm
        from repro.algorithms.kernels import _KERNELS, register_kernel

        assert not supports_fast("phase-king")
        register_kernel(PhaseKingAlgorithm, lambda algorithm, values: None)
        try:
            # No second table to drift: the registration is advertised.
            assert supports_fast("phase-king")
        finally:
            del _KERNELS[PhaseKingAlgorithm]
        assert not supports_fast("phase-king")

    def test_fallback_cycle_raises_instead_of_hanging(self):
        from repro.simulation.backends import _BACKENDS, register_backend

        class Stubborn:
            name = "stubborn"
            fallback = "stubborn"
            equivalent_to_reference = False

            def supports(self, algorithm, adversary, config, observers):
                return False

            def run(self, *args):  # pragma: no cover - never reached
                raise AssertionError

        register_backend(Stubborn())
        try:
            with pytest.raises(ValueError, match="fallback cycle"):
                run_simulation(
                    AteAlgorithm.symmetric(n=4, alpha=0),
                    generators.split(4),
                    backend="stubborn",
                )
        finally:
            del _BACKENDS["stubborn"]

    def test_spec_backend_field_round_trips(self, tmp_path):
        spec = self._spec(backend="fast")
        path = tmp_path / "spec.json"
        spec.to_json(path)
        loaded = CampaignSpec.from_json(path)
        assert loaded.backend == "fast"
        assert loaded.expand()[0].backend == "fast"

    def test_backend_never_changes_cache_keys(self):
        """Backends are semantically invisible, so run cache keys (and
        the default campaign hash) are shared across backends."""
        reference_runs = self._spec(backend=None).expand()
        fast_runs = self._spec(backend="fast").expand()
        assert [r.config_hash() for r in reference_runs] == [
            r.config_hash() for r in fast_runs
        ]

    def test_default_spec_dict_has_no_backend_key(self):
        assert "backend" not in self._spec().as_dict()
        assert self._spec(backend="fast").as_dict()["backend"] == "fast"

    def test_runner_does_not_mutate_caller_tasks(self):
        from repro.runner import RunTask

        task = RunTask(
            algorithm=AteAlgorithm.symmetric(n=5, alpha=0),
            adversary=ReliableAdversary(),
            initial_values=generators.split(5),
            max_rounds=10,
        )
        CampaignRunner(backend="fast").run_tasks([task])
        # The caller's task is untouched: a second runner with a
        # different default backend still applies its own default.
        assert task.backend is None

    def test_async_tasks_are_never_cached(self, tmp_path):
        """Async results can diverge from reference, so they must not
        populate (or be served from) the backend-independent cache."""
        from repro.runner import RunTask

        def task():
            return RunTask(
                algorithm=AteAlgorithm.symmetric(n=5, alpha=0),
                adversary=ReliableAdversary(),
                initial_values=generators.split(5),
                max_rounds=10,
                key="async-cache-probe/0000",
            )

        async_runner = CampaignRunner(cache=str(tmp_path), backend="async")
        record = async_runner.run_tasks([task()])[0]
        assert record.ok
        assert async_runner.stats.cache_hits == 0
        assert async_runner.stats.cache_misses == 0
        # Nothing was written: a reference runner gets a miss, not the
        # async row.
        reference_runner = CampaignRunner(cache=str(tmp_path), backend="reference")
        reference_runner.run_tasks([task()])
        assert reference_runner.stats.cache_hits == 0
        assert reference_runner.stats.cache_misses == 1

"""Differential tests: the batch backend is semantically invisible.

The batch engine executes whole seed sweeps as NumPy arrays, so it is
gated twice: every cell of the fast engine's differential grid must be
byte-identical when run as a single-request batch, and whole
heterogeneous sweeps (many seeds, mixed shapes, staggered early exits)
must match per-run reference execution run for run.  Byte-identical
records mean cache entries are shared across ``reference``/``fast``/
``batch`` without a schema bump.
"""

import pytest

np = pytest.importorskip("numpy")

from repro.adversary import PeriodicGoodRoundAdversary, RandomCorruptionAdversary
from repro.algorithms import AteAlgorithm
from repro.core.predicates import AlphaSafePredicate
from repro.runner import CampaignRunner, DecisionReducer, RunTask
from repro.simulation import SimulationConfig, run_simulation
from repro.simulation.batch_engine import SimulationRequest, run_algorithm_batch
from repro.workloads import generators
from test_fast_engine_differential import (
    ADVERSARIES,
    ALGORITHMS,
    MAX_ROUNDS,
    assert_equivalent,
)


def run_reference_and_batch(algorithm_factory, adversary_factory, n, seed=42,
                            **config_kwargs):
    config_kwargs.setdefault("max_rounds", MAX_ROUNDS)
    config = SimulationConfig(record_states=False, **config_kwargs)
    initial_values = generators.uniform_random(n, seed=seed)
    reference = run_simulation(
        algorithm_factory(n), initial_values, adversary_factory(n), config,
        backend="reference",
    )
    batch = run_simulation(
        algorithm_factory(n), initial_values, adversary_factory(n), config,
        backend="batch",
    )
    assert batch.metadata.get("engine") == "batch", "batch backend did not engage"
    return reference, batch


@pytest.mark.parametrize("n", [4, 10, 30])
@pytest.mark.parametrize("adversary_name", sorted(ADVERSARIES))
@pytest.mark.parametrize("algorithm_name", sorted(ALGORITHMS))
def test_differential_grid(algorithm_name, adversary_name, n):
    reference, batch = run_reference_and_batch(
        ALGORITHMS[algorithm_name], ADVERSARIES[adversary_name], n
    )
    assert_equivalent(reference, batch)


class TestWholeSweepBatches:
    """Multi-run batches: the whole grid in one call, staggered exits."""

    def test_grid_slice_as_one_heterogeneous_batch(self):
        """Every algorithm × adversary cell at n=10, all seeds, in ONE
        ``run_algorithm_batch`` call: grouping by shape plus per-run
        early-exit masks must reproduce per-run reference execution."""
        config = SimulationConfig(max_rounds=MAX_ROUNDS, record_states=False)
        requests, references = [], []
        for algorithm_name in sorted(ALGORITHMS):
            for adversary_name in sorted(ADVERSARIES):
                for seed in (1, 2):
                    initial = generators.uniform_random(10, seed=seed)
                    requests.append(SimulationRequest(
                        ALGORITHMS[algorithm_name](10), initial,
                        adversary=ADVERSARIES[adversary_name](10), config=config,
                    ))
                    references.append(run_simulation(
                        ALGORITHMS[algorithm_name](10), initial,
                        ADVERSARIES[adversary_name](10), config,
                        backend="reference",
                    ))
        results = run_algorithm_batch(requests)
        assert len(results) == len(references)
        for reference, batch in zip(references, results):
            assert_equivalent(reference, batch)

    def test_staggered_early_exit(self):
        """Runs deciding at different rounds leave the active set one by
        one; finished runs must not keep accruing rounds or messages."""
        config = SimulationConfig(max_rounds=40, record_states=False)
        requests, references = [], []
        for seed in range(12):
            initial = generators.uniform_random(8, seed=seed)
            adversary = RandomCorruptionAdversary(
                alpha=1, corruption_probability=0.5, drop_probability=0.3,
                value_domain=(0, 1), seed=seed,
            )
            requests.append(SimulationRequest(
                AteAlgorithm.symmetric(n=8, alpha=1), initial,
                adversary=adversary, config=config,
            ))
            references.append(run_simulation(
                AteAlgorithm.symmetric(n=8, alpha=1), initial,
                RandomCorruptionAdversary(
                    alpha=1, corruption_probability=0.5, drop_probability=0.3,
                    value_domain=(0, 1), seed=seed,
                ),
                config, backend="reference",
            ))
        results = run_algorithm_batch(requests)
        rounds = {r.rounds_executed for r in results}
        assert len(rounds) > 1, "cell too uniform to exercise staggered exits"
        for reference, batch in zip(references, results):
            assert_equivalent(reference, batch)

    def test_min_rounds_and_no_stop(self):
        for kwargs in ({"min_rounds": 9}, {"stop_when_all_decided": False},
                       {"min_rounds": MAX_ROUNDS}):
            reference, batch = run_reference_and_batch(
                ALGORITHMS["ute"], ADVERSARIES["good-phases"], n=6, **kwargs
            )
            assert_equivalent(reference, batch)

    def test_none_initial_values(self):
        """Degenerate None 'decisions' stay undecided in the active mask."""
        n = 4
        config = SimulationConfig(max_rounds=8, record_states=False)
        initial_values = {pid: None for pid in range(n)}
        reference = run_simulation(
            ALGORITHMS["ate"](n), initial_values,
            ADVERSARIES["reliable"](n), config, backend="reference",
        )
        batch = run_simulation(
            ALGORITHMS["ate"](n), initial_values,
            ADVERSARIES["reliable"](n), config, backend="batch",
        )
        assert batch.metadata.get("engine") == "batch"
        assert_equivalent(reference, batch)
        assert batch.rounds_executed == 8


class TestRecordByteEquality:
    """Cached rows and reduced records are byte-identical across backends."""

    def _task(self, backend, n=9):
        return RunTask(
            algorithm=AteAlgorithm.symmetric(n=n, alpha=1),
            adversary=PeriodicGoodRoundAdversary(
                inner=RandomCorruptionAdversary(alpha=1, value_domain=(0, 1), seed=11),
                period=4,
            ),
            initial_values=generators.split(n),
            max_rounds=20,
            predicate=AlphaSafePredicate(1),
            key="batch-differential/0000",
            cell={"algorithm": "ate", "n": n},
            run_index=0,
            seed=11,
            backend=backend,
        )

    def test_run_records_byte_identical(self):
        records = {}
        for backend in ("reference", "batch"):
            runner = CampaignRunner()
            records[backend] = runner.run_tasks([self._task(backend)])[0]
        assert records["reference"].as_dict() == records["batch"].as_dict()

    def test_reduced_records_byte_identical(self):
        reduced = {}
        for backend in ("reference", "batch"):
            runner = CampaignRunner()
            reduced[backend] = runner.run_reduced(
                [self._task(backend)], DecisionReducer()
            )[0]
        assert reduced["reference"].as_dict() == reduced["batch"].as_dict()

    def test_cache_entries_shared_with_batch(self, tmp_path):
        """A row cached by the batch backend is a hit for reference/fast."""
        runner_batch = CampaignRunner(cache=str(tmp_path), backend="batch")
        first = runner_batch.run_tasks([self._task(None)])[0]
        assert runner_batch.stats.cache_misses == 1
        assert runner_batch.stats.batched == 1
        for other in ("reference", "fast"):
            runner = CampaignRunner(cache=str(tmp_path), backend=other)
            second = runner.run_tasks([self._task(None)])[0]
            assert runner.stats.cache_hits == 1
            assert first.as_dict() == second.as_dict()


class TestBatchPlanning:
    """The batch-planner tier is pure acceleration: same bytes, off or on."""

    def _sweep(self):
        config = SimulationConfig(max_rounds=15, record_states=False)
        return [
            SimulationRequest(
                AteAlgorithm.symmetric(n=8, alpha=1),
                generators.uniform_random(8, seed=seed),
                adversary=RandomCorruptionAdversary(
                    alpha=1, value_domain=(0, 1), seed=seed
                ),
                config=config,
            )
            for seed in range(6)
        ]

    def test_planning_knob_off_matches_on(self, monkeypatch):
        """``REPRO_BATCH_PLANNING=off`` falls back to per-run mask
        planning inside the batch engine; the produced collections must
        be byte-identical to the batch-planned path."""
        planned = run_algorithm_batch(self._sweep())
        monkeypatch.setenv("REPRO_BATCH_PLANNING", "off")
        fallback = run_algorithm_batch(self._sweep())
        for on_result, off_result in zip(planned, fallback):
            assert_equivalent(on_result, off_result)
            assert on_result.metadata.get("batch_planned_rounds", 0) > 0
            assert off_result.metadata.get("batch_planned_rounds", 0) == 0

    def test_batch_planned_rounds_metadata(self):
        """Registered adversary classes report every round as batch
        planned; wrapped (subclass-free but unregistered) adversaries
        report zero and still match."""
        planned = run_algorithm_batch(self._sweep())
        for result in planned:
            assert (
                result.metadata["batch_planned_rounds"] == result.rounds_executed
            )
        config = SimulationConfig(max_rounds=10, record_states=False)
        wrapped = run_algorithm_batch(
            [
                SimulationRequest(
                    AteAlgorithm.symmetric(n=6, alpha=1),
                    generators.uniform_random(6, seed=3),
                    adversary=PeriodicGoodRoundAdversary(
                        inner=RandomCorruptionAdversary(
                            alpha=1, value_domain=(0, 1), seed=3
                        ),
                        period=3,
                    ),
                    config=config,
                )
            ]
        )[0]
        assert wrapped.metadata.get("batch_planned_rounds", 0) == 0


class TestPackedTierAndChunking:
    """The packed uint64 tier and the memory-budget chunker are pure
    acceleration: byte-identical records packed-vs-dense (including a
    sampled large-n tier, where ``auto`` actually packs) and
    chunked-vs-unchunked."""

    # Families that exercise every packed code path: the perfect-round
    # template, batch-planned drop words, drop+corrupt scatter, and the
    # per-run planner fallback (no batch planner registered).
    LARGE_N_FAMILIES = [
        "reliable",
        "random-omission",
        "random-corruption-drops",
        "bounded-omission",
    ]

    def _sweep(self, n, adversary_name, seeds=2, max_rounds=10):
        config = SimulationConfig(max_rounds=max_rounds, record_states=False)
        return [
            SimulationRequest(
                AteAlgorithm.symmetric(n=n, alpha=1),
                generators.uniform_random(n, seed=seed),
                adversary=ADVERSARIES[adversary_name](n),
                config=config,
            )
            for seed in range(seeds)
        ]

    @pytest.mark.parametrize("adversary_name", LARGE_N_FAMILIES)
    def test_large_n_packed_matches_dense(self, monkeypatch, adversary_name):
        """n = 256 sampled tier: force the dense tier, then the packed
        tier, and require byte-identical collections and outcomes."""
        monkeypatch.setenv("REPRO_BATCH_PACKED", "off")
        dense = run_algorithm_batch(self._sweep(256, adversary_name))
        monkeypatch.setenv("REPRO_BATCH_PACKED", "on")
        packed = run_algorithm_batch(self._sweep(256, adversary_name))
        for dense_result, packed_result in zip(dense, packed):
            assert_equivalent(dense_result, packed_result)

    @pytest.mark.parametrize("adversary_name", sorted(ADVERSARIES))
    def test_small_n_packed_matches_dense(self, monkeypatch, adversary_name):
        """Every grid family at n = 10 with the packed tier forced on
        (auto would stay dense below n = 128)."""
        dense = run_algorithm_batch(self._sweep(10, adversary_name, seeds=3))
        monkeypatch.setenv("REPRO_BATCH_PACKED", "on")
        packed = run_algorithm_batch(self._sweep(10, adversary_name, seeds=3))
        for dense_result, packed_result in zip(dense, packed):
            assert_equivalent(dense_result, packed_result)

    @pytest.mark.parametrize("packed_mode", ["on", "off"])
    def test_large_n_chunked_matches_unchunked(self, monkeypatch, packed_mode):
        """A budget small enough to split the run axis must not change a
        byte, and the split must be visible in the chunk markers."""
        monkeypatch.setenv("REPRO_BATCH_PACKED", packed_mode)
        whole = run_algorithm_batch(self._sweep(256, "random-omission", seeds=4))
        monkeypatch.setenv("REPRO_BATCH_MEMORY_BUDGET", "100k")
        chunked = run_algorithm_batch(self._sweep(256, "random-omission", seeds=4))
        splits = sum(r.metadata.get("batch_chunks", 0) for r in chunked)
        assert splits > 0, "budget did not force a split"
        assert all(r.metadata.get("batch_chunks", 0) == 0 for r in whole)
        for whole_result, chunked_result in zip(whole, chunked):
            assert_equivalent(whole_result, chunked_result)

    def test_chunked_reference_parity(self, monkeypatch):
        """Chunked execution is still byte-identical to the reference
        engine (not merely self-consistent)."""
        monkeypatch.setenv("REPRO_BATCH_MEMORY_BUDGET", "8k")
        config = SimulationConfig(max_rounds=MAX_ROUNDS, record_states=False)
        requests, references = [], []
        for seed in range(6):
            initial = generators.uniform_random(10, seed=seed)
            requests.append(SimulationRequest(
                AteAlgorithm.symmetric(n=10, alpha=1), initial,
                adversary=RandomCorruptionAdversary(
                    alpha=1, value_domain=(0, 1), seed=seed
                ),
                config=config,
            ))
            references.append(run_simulation(
                AteAlgorithm.symmetric(n=10, alpha=1), initial,
                RandomCorruptionAdversary(alpha=1, value_domain=(0, 1), seed=seed),
                config, backend="reference",
            ))
        chunked = run_algorithm_batch(requests)
        assert sum(r.metadata.get("batch_chunks", 0) for r in chunked) > 0
        for reference, batch in zip(references, chunked):
            assert_equivalent(reference, batch)

    def test_budget_parse_errors(self, monkeypatch):
        from repro.simulation.batch_engine import _memory_budget_bytes

        monkeypatch.setenv("REPRO_BATCH_MEMORY_BUDGET", "1.5g")
        assert _memory_budget_bytes() == int(1.5 * 1024**3)
        monkeypatch.setenv("REPRO_BATCH_MEMORY_BUDGET", "512k")
        assert _memory_budget_bytes() == 512 * 1024
        monkeypatch.setenv("REPRO_BATCH_MEMORY_BUDGET", "0")
        assert _memory_budget_bytes() is None
        monkeypatch.setenv("REPRO_BATCH_MEMORY_BUDGET", "lots")
        with pytest.raises(ValueError, match="REPRO_BATCH_MEMORY_BUDGET"):
            _memory_budget_bytes()

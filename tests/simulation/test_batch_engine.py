"""Unit tests for the batch engine: requests, grouping, fallbacks.

The differential grid (``test_batch_engine_differential.py``) gates
byte-identity; this module covers the machinery around it — request
normalisation, shape grouping, the conservative per-run fallbacks for
value domains the codebook cannot represent faithfully, and the
``run_simulations_batched`` dispatcher (including NumPy-less
degradation, which must keep ``backend="batch"`` safe to request).
"""

import pytest

from repro.adversary import RandomOmissionAdversary, ReliableAdversary
from repro.algorithms import AteAlgorithm, PhaseKingAlgorithm, UteAlgorithm
from repro.simulation import SimulationConfig, run_simulation
from repro.simulation import batch_engine
from repro.simulation.backends import get_backend, run_simulations_batched
from repro.simulation.batch_engine import (
    SimulationRequest,
    batch_supported,
    numpy_available,
    run_algorithm_batch,
)
from repro.simulation.engine import RoundObserver
from repro.workloads import generators

np = pytest.importorskip("numpy")

CONFIG = SimulationConfig(max_rounds=20, record_states=False)


def ate_request(n=6, seed=3, adversary=None, config=CONFIG, initial=None):
    return SimulationRequest(
        algorithm=AteAlgorithm.symmetric(n=n, alpha=1),
        initial_values=initial or generators.uniform_random(n, seed=seed),
        adversary=adversary or RandomOmissionAdversary(0.2, seed=seed),
        config=config,
    )


def reference_result(request):
    return run_simulation(
        request.algorithm, dict(request.initial_values), request.adversary,
        request.config, backend="reference",
    )


class TestSimulationRequest:
    def test_normalised_fills_defaults(self):
        request = SimulationRequest(
            AteAlgorithm.symmetric(n=4, alpha=0), generators.split(4)
        )
        normalised = request.normalised()
        assert isinstance(normalised.adversary, ReliableAdversary)
        assert normalised.config is not None
        assert normalised.spec is not None

    def test_batch_supported_mirrors_fast_constraints(self):
        algorithm = AteAlgorithm.symmetric(n=4, alpha=0)
        assert batch_supported(algorithm, config=CONFIG)
        # record_states and observers disqualify, exactly like `fast`.
        assert not batch_supported(
            algorithm, config=SimulationConfig(max_rounds=5, record_states=True)
        )

        class Observer(RoundObserver):
            def on_round(self, *args, **kwargs):
                pass

        assert not batch_supported(
            algorithm, config=CONFIG, observers=[Observer()]
        )
        # No vectorised kernel family for phase-king.
        assert not batch_supported(PhaseKingAlgorithm(n=4, f=1), config=CONFIG)

    def test_rejecting_unsupported_requests(self):
        with pytest.raises(ValueError, match="no vectorised kernel"):
            run_algorithm_batch([
                SimulationRequest(
                    PhaseKingAlgorithm(n=4, f=1), generators.split(4), config=CONFIG
                )
            ])

    def test_custom_kernel_registration_disqualifies_batch(self):
        """A kernel registered over a built-in algorithm class must take
        the per-run path: the vectorised kernels mirror the *built-in*
        semantics only."""
        from repro.algorithms.kernels import AteKernel, register_kernel

        class LoudAteKernel(AteKernel):
            pass

        algorithm = AteAlgorithm.symmetric(n=4, alpha=0)
        assert batch_supported(algorithm, config=CONFIG)
        register_kernel(AteAlgorithm, LoudAteKernel, overwrite=True)
        try:
            assert not batch_supported(algorithm, config=CONFIG)
        finally:
            register_kernel(AteAlgorithm, AteKernel, overwrite=True)
        assert batch_supported(algorithm, config=CONFIG)


class TestShapeGrouping:
    def test_mixed_shapes_and_horizons_in_one_call(self):
        requests, references = [], []
        for n, max_rounds in [(4, 10), (7, 10), (4, 16)]:
            for seed in (0, 1):
                config = SimulationConfig(max_rounds=max_rounds, record_states=False)
                requests.append(ate_request(n=n, seed=seed, config=config))
                references.append(reference_result(
                    ate_request(n=n, seed=seed, config=config)
                ))
        results = run_algorithm_batch(requests)
        for reference, batch in zip(references, results):
            assert batch.metadata.get("engine") == "batch"
            assert reference.outcome == batch.outcome
            assert reference.metrics.as_dict() == batch.metrics.as_dict()

    def test_families_group_separately(self):
        requests = [
            ate_request(n=5, seed=0),
            SimulationRequest(
                UteAlgorithm.minimal(n=5, alpha=1),
                generators.uniform_random(5, seed=0),
                adversary=ReliableAdversary(),
                config=CONFIG,
            ),
        ]
        references = [reference_result(r) for r in (
            ate_request(n=5, seed=0),
            SimulationRequest(
                UteAlgorithm.minimal(n=5, alpha=1),
                generators.uniform_random(5, seed=0),
                adversary=ReliableAdversary(),
                config=CONFIG,
            ),
        )]
        results = run_algorithm_batch(requests)
        for reference, batch in zip(references, results):
            assert reference.outcome == batch.outcome


class TestConservativeFallbacks:
    """Value domains the codebook cannot represent faithfully must fall
    back to per-run fast execution — correct results, never a crash."""

    def test_cross_type_equal_values_fall_back(self):
        # True == 1, so a shared Counter codebook cannot keep per-run
        # first-insertion representatives; the whole group falls back.
        initial = {0: True, 1: 1, 2: 0, 3: False, 4: 1, 5: True}
        request = ate_request(n=6, initial=dict(initial),
                              adversary=ReliableAdversary())
        reference = reference_result(
            ate_request(n=6, initial=dict(initial), adversary=ReliableAdversary())
        )
        result = run_algorithm_batch([request])[0]
        assert result.metadata.get("engine") == "fast"
        assert reference.outcome == result.outcome

    def test_unorderable_value_domain_falls_back(self):
        class Opaque:
            """Distinct instances with identical sort keys."""

            def __repr__(self):
                return "Opaque()"

        initial = {pid: Opaque() for pid in range(4)}
        request = ate_request(n=4, initial=dict(initial),
                              adversary=ReliableAdversary())
        reference = reference_result(
            ate_request(n=4, initial=dict(initial), adversary=ReliableAdversary())
        )
        result = run_algorithm_batch([request])[0]
        assert result.metadata.get("engine") == "fast"
        assert reference.rounds_executed == result.rounds_executed
        assert [d.process for d in reference.outcome.decisions] == [
            d.process for d in result.outcome.decisions
        ]

    def test_fallback_replays_seeded_schedules(self):
        """The aborted batch may have consumed adversary RNG; the
        fallback must reset schedules so per-run replay stays exact."""
        # One poisoned run aborts its whole group after the seeded
        # adversaries have started planning rounds.
        poisoned = ate_request(
            n=6, initial={0: True, 1: 1, 2: 0, 3: 0, 4: 1, 5: 0},
            adversary=RandomOmissionAdversary(0.3, seed=5),
        )
        clean_seeds = [0, 1, 2]
        requests = [poisoned] + [ate_request(n=6, seed=s) for s in clean_seeds]
        references = [reference_result(ate_request(
            n=6, initial={0: True, 1: 1, 2: 0, 3: 0, 4: 1, 5: 0},
            adversary=RandomOmissionAdversary(0.3, seed=5),
        ))] + [reference_result(ate_request(n=6, seed=s)) for s in clean_seeds]
        results = run_algorithm_batch(requests)
        for reference, result in zip(references, results):
            assert result.metadata.get("engine") == "fast"
            assert reference.outcome == result.outcome
            assert reference.metrics.as_dict() == result.metrics.as_dict()


class TestBatchedDispatcher:
    def test_partitions_batchable_and_rest(self):
        class Observer(RoundObserver):
            def on_round(self, *args, **kwargs):
                pass

        requests = [ate_request(seed=s) for s in range(4)]
        requests.insert(2, SimulationRequest(
            AteAlgorithm.symmetric(n=6, alpha=1),
            generators.uniform_random(6, seed=9),
            adversary=ReliableAdversary(),
            config=CONFIG,
            observers=[Observer()],
        ))
        results = run_simulations_batched(requests)
        engines = [r.metadata.get("engine") for r in results]
        assert engines == ["batch", "batch", None, "batch", "batch"]

    def test_explicit_backend_instance(self):
        backend = get_backend("batch")
        results = run_simulations_batched(
            [ate_request(seed=s) for s in range(3)], backend=backend
        )
        assert all(r.metadata.get("engine") == "batch" for r in results)

    def test_non_batch_backend_runs_per_request(self):
        results = run_simulations_batched(
            [ate_request(seed=s) for s in range(3)], backend="fast"
        )
        assert all(r.metadata.get("engine") == "fast" for r in results)


class TestNumpyLessDegradation:
    """Without NumPy the backend stays registered and degrades to fast."""

    def test_batch_reports_unsupported(self, monkeypatch):
        monkeypatch.setattr(batch_engine, "np", None)
        assert not numpy_available()
        assert not batch_supported(
            AteAlgorithm.symmetric(n=4, alpha=0), config=CONFIG
        )

    def test_run_simulation_falls_back_to_fast(self, monkeypatch):
        monkeypatch.setattr(batch_engine, "np", None)
        request = ate_request(seed=4)
        result = run_simulation(
            request.algorithm, dict(request.initial_values), request.adversary,
            request.config, backend="batch",
        )
        assert result.metadata.get("engine") == "fast"
        reference = reference_result(ate_request(seed=4))
        assert reference.outcome == result.outcome

    def test_run_algorithm_batch_refuses_without_numpy(self, monkeypatch):
        monkeypatch.setattr(batch_engine, "np", None)
        with pytest.raises(ValueError, match="requires numpy"):
            run_algorithm_batch([ate_request()])

    def test_dispatcher_degrades_per_request(self, monkeypatch):
        monkeypatch.setattr(batch_engine, "np", None)
        results = run_simulations_batched([ate_request(seed=s) for s in range(3)])
        assert all(r.metadata.get("engine") == "fast" for r in results)

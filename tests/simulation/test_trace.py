"""Tests for trace serialisation and replay."""

from repro.adversary import RandomCorruptionAdversary
from repro.algorithms import AteAlgorithm
from repro.simulation.engine import run_consensus
from repro.simulation.trace import (
    ReplayAdversary,
    collection_from_dict,
    collection_to_dict,
    load_trace,
    save_trace,
)
from repro.workloads import generators


def _sample_run(n=6, alpha=1, seed=17):
    return run_consensus(
        AteAlgorithm.symmetric(n=n, alpha=alpha),
        generators.uniform_random(n, seed=seed),
        RandomCorruptionAdversary(alpha=alpha, value_domain=(0, 1), seed=seed),
        max_rounds=25,
    )


class TestSerialisation:
    def test_round_trip_preserves_heard_of_structure(self):
        result = _sample_run()
        data = collection_to_dict(result.collection)
        rebuilt = collection_from_dict(data)
        assert rebuilt.n == result.collection.n
        assert rebuilt.num_rounds == result.collection.num_rounds
        for r in range(1, rebuilt.num_rounds + 1):
            for p in range(rebuilt.n):
                assert rebuilt.ho(p, r) == result.collection.ho(p, r)
                assert rebuilt.sho(p, r) == result.collection.sho(p, r)

    def test_save_and_load(self, tmp_path):
        result = _sample_run()
        path = save_trace(result.collection, tmp_path / "traces" / "run.json")
        assert path.exists()
        loaded = load_trace(path)
        assert loaded.num_rounds == result.collection.num_rounds
        assert loaded.total_corruptions() == result.collection.total_corruptions()


class TestReplayAdversary:
    def test_replay_reproduces_run_exactly(self):
        n = 6
        workload = generators.uniform_random(n, seed=5)
        original = run_consensus(
            AteAlgorithm.symmetric(n=n, alpha=1),
            workload,
            RandomCorruptionAdversary(alpha=1, value_domain=(0, 1), seed=11),
            max_rounds=25,
        )
        replayed = run_consensus(
            AteAlgorithm.symmetric(n=n, alpha=1),
            workload,
            ReplayAdversary(original.collection),
            max_rounds=25,
        )
        assert replayed.outcome.decision_values == original.outcome.decision_values
        assert replayed.outcome.decision_rounds == original.outcome.decision_rounds
        assert replayed.rounds_executed == original.rounds_executed
        assert (
            replayed.metrics.messages_corrupted == original.metrics.messages_corrupted
        )

    def test_rounds_beyond_recording_are_reliable(self):
        n = 4
        workload = generators.split(n)
        short = run_consensus(
            AteAlgorithm.symmetric(n=n, alpha=0),
            workload,
            max_rounds=2,
        )
        replay = ReplayAdversary(short.collection)
        intended = {s: {r: 1 for r in range(n)} for s in range(n)}
        received = replay.deliver_round(99, intended)
        assert all(len(inbox) == n for inbox in received.values())
        assert all(payload == 1 for inbox in received.values() for payload in inbox.values())

"""Differential tests: the fast backend is semantically invisible.

For every registered algorithm with a step kernel × every adversary
family (including the combinators of ``adversary/compose.py``) × n ∈
{4, 10, 30}, the fast backend must produce *identical* runs to the
reference engine: same decisions, same decision rounds, same per-round
``HO``/``SHO``/``AHO`` sets — and therefore byte-identical
:class:`RunRecord`/:class:`ReducedRecord` rows, so cache entries are
shared across backends without a schema bump.
"""

import pytest

from repro.adversary import (
    AlphaCapAdversary,
    BlockFaultAdversary,
    BoundedOmissionAdversary,
    CrashAdversary,
    MinimumSafeDeliveryAdversary,
    PartitionAdversary,
    PeriodicGoodPhaseAdversary,
    PeriodicGoodRoundAdversary,
    RandomCorruptionAdversary,
    RandomOmissionAdversary,
    ReliableAdversary,
    RotatingSenderCorruptionAdversary,
    RoundScheduleAdversary,
    SequentialAdversary,
    SplitVoteAdversary,
    StaticByzantineAdversary,
    UnboundedCorruptionAdversary,
)
from repro.algorithms import (
    AteAlgorithm,
    OneThirdRuleAlgorithm,
    UniformVotingAlgorithm,
    UteAlgorithm,
)
from repro.core.predicates import AlphaSafePredicate
from repro.runner import CampaignRunner, DecisionReducer, RunTask
from repro.runner.records import RunRecord
from repro.simulation import SimulationConfig, run_simulation
from repro.workloads import generators

MAX_ROUNDS = 14

ALGORITHMS = {
    "ate": lambda n: AteAlgorithm.symmetric(n=n, alpha=1),
    "ate-nested": lambda n: AteAlgorithm(
        AteAlgorithm.symmetric(n=n, alpha=1).params, nested_decision_guard=True
    ),
    "one-third-rule": lambda n: OneThirdRuleAlgorithm(n=n),
    "ute": lambda n: UteAlgorithm.minimal(n=n, alpha=1),
    "uniform-voting": lambda n: UniformVotingAlgorithm(n=n),
}

ADVERSARIES = {
    # fault-free / benign
    "reliable": lambda n: ReliableAdversary(),
    "random-omission": lambda n: RandomOmissionAdversary(0.2, seed=7),
    "bounded-omission": lambda n: BoundedOmissionAdversary(
        max_omissions_per_receiver=max(1, n // 4), drop_probability=0.6, seed=7
    ),
    "crash": lambda n: CrashAdversary({0: 2, 1: 5}),
    "partition": lambda n: PartitionAdversary([range(n // 2), range(n // 2, n)]),
    # value faults
    "random-corruption": lambda n: RandomCorruptionAdversary(
        alpha=1, value_domain=(0, 1), seed=7
    ),
    "random-corruption-drops": lambda n: RandomCorruptionAdversary(
        alpha=2, drop_probability=0.1, value_domain=(0, 1), seed=7
    ),
    "rotating-corruption": lambda n: RotatingSenderCorruptionAdversary(
        alpha=1, value_domain=(0, 1), seed=7
    ),
    "rotating-corruption-wide": lambda n: RotatingSenderCorruptionAdversary(
        alpha=max(2, n // 3), value_domain=(0, 1), seed=7
    ),
    "rotating-corruption-stable": lambda n: RotatingSenderCorruptionAdversary(
        alpha=1, value_domain=(0, 1), seed=7, equivocate=False
    ),
    "unbounded-corruption": lambda n: UnboundedCorruptionAdversary(
        0.25, value_domain=(0, 1), seed=7
    ),
    "split-vote": lambda n: SplitVoteAdversary(
        budget_per_receiver=2, value_a=0, value_b=1, seed=7
    ),
    # lower-bound scenarios
    "block-faults": lambda n: BlockFaultAdversary(
        faults_per_round=n // 2, value_domain=(0, 1), seed=7
    ),
    "block-faults-all-links": lambda n: BlockFaultAdversary(
        faults_per_round=None, value_domain=(0, 1), seed=7
    ),
    "block-faults-drop": lambda n: BlockFaultAdversary(
        faults_per_round=n // 2, mode="drop", seed=7
    ),
    "block-faults-scheduled": lambda n: BlockFaultAdversary(
        faults_per_round=n // 2, victim_schedule=[0, 2, 1], value_domain=(0, 1), seed=7
    ),
    "static-byzantine": lambda n: StaticByzantineAdversary(
        byzantine=range(1), value_domain=(0, 1), seed=7
    ),
    # liveness wrappers
    "good-rounds": lambda n: PeriodicGoodRoundAdversary(
        inner=RandomCorruptionAdversary(alpha=1, value_domain=(0, 1), seed=7), period=4
    ),
    "good-phases": lambda n: PeriodicGoodPhaseAdversary(
        inner=RandomCorruptionAdversary(alpha=1, value_domain=(0, 1), seed=7), period=3
    ),
    # combinators (adversary/compose.py)
    "alpha-cap": lambda n: AlphaCapAdversary(
        inner=UnboundedCorruptionAdversary(0.3, value_domain=(0, 1), seed=7), alpha=1
    ),
    "min-safe-delivery": lambda n: MinimumSafeDeliveryAdversary(
        inner=RandomOmissionAdversary(0.5, seed=7), minimum=n // 2 + 1
    ),
    "sequential": lambda n: SequentialAdversary(
        [
            (1, RandomCorruptionAdversary(alpha=1, value_domain=(0, 1), seed=7)),
            (6, ReliableAdversary()),
        ]
    ),
    "round-schedule": lambda n: RoundScheduleAdversary(
        schedule=lambda r: RandomOmissionAdversary(0.3, seed=7) if r % 3 == 0 else None
    ),
}


def run_both(algorithm_factory, adversary_factory, n, seed=42, **config_kwargs):
    config_kwargs.setdefault("max_rounds", MAX_ROUNDS)
    config = SimulationConfig(record_states=False, **config_kwargs)
    initial_values = generators.uniform_random(n, seed=seed)
    reference = run_simulation(
        algorithm_factory(n), initial_values, adversary_factory(n), config,
        backend="reference",
    )
    fast = run_simulation(
        algorithm_factory(n), initial_values, adversary_factory(n), config,
        backend="fast",
    )
    assert fast.metadata.get("engine") == "fast", "fast backend did not engage"
    return reference, fast


def assert_equivalent(reference, fast):
    """Decisions, decision rounds and per-round HO/SHO/AHO must match."""
    assert reference.rounds_executed == fast.rounds_executed
    assert reference.outcome.decisions == fast.outcome.decisions
    outcome_ref, outcome_fast = reference.outcome, fast.outcome
    assert (
        outcome_ref.agreement,
        outcome_ref.integrity,
        outcome_ref.termination,
        outcome_ref.validity,
        outcome_ref.violations,
    ) == (
        outcome_fast.agreement,
        outcome_fast.integrity,
        outcome_fast.termination,
        outcome_fast.validity,
        outcome_fast.violations,
    )
    n = reference.collection.n
    for record_ref, record_fast in zip(reference.collection, fast.collection):
        for pid in range(n):
            assert record_ref.ho(pid) == record_fast.ho(pid)
            assert record_ref.sho(pid) == record_fast.sho(pid)
            assert record_ref.aho(pid) == record_fast.aho(pid)
            # Payload-level equality, not just set-level.
            assert dict(record_ref.receptions[pid].received) == dict(
                record_fast.receptions[pid].received
            )
    # Final process states agree too.
    for pid in range(n):
        assert (
            reference.processes[pid].state_snapshot()
            == fast.processes[pid].state_snapshot()
        )
    assert reference.metrics.as_dict() == fast.metrics.as_dict()


@pytest.mark.parametrize("n", [4, 10, 30])
@pytest.mark.parametrize("adversary_name", sorted(ADVERSARIES))
@pytest.mark.parametrize("algorithm_name", sorted(ALGORITHMS))
def test_differential_grid(algorithm_name, adversary_name, n):
    reference, fast = run_both(
        ALGORITHMS[algorithm_name], ADVERSARIES[adversary_name], n
    )
    assert_equivalent(reference, fast)


class TestNativePlannerSelection:
    """The grid families with native planners must actually use them
    (otherwise the differential grid silently gates only the adapter)."""

    def test_native_families_get_native_planners(self):
        from repro.adversary.plan import (
            BlockFaultPlanner,
            RandomCorruptionPlanner,
            RandomOmissionPlanner,
            ReliablePlanner,
            RotatingCorruptionPlanner,
            planner_for,
        )

        expected = {
            "reliable": ReliablePlanner,
            "random-omission": RandomOmissionPlanner,
            "random-corruption": RandomCorruptionPlanner,
            "rotating-corruption": RotatingCorruptionPlanner,
            "rotating-corruption-stable": RotatingCorruptionPlanner,
            "block-faults": BlockFaultPlanner,
            "block-faults-drop": BlockFaultPlanner,
            "block-faults-scheduled": BlockFaultPlanner,
        }
        for name, planner_type in expected.items():
            planner = planner_for(ADVERSARIES[name](6), 6)
            assert type(planner) is planner_type, name

    def test_subclasses_fall_back_to_the_adapter(self):
        from repro.adversary.plan import MatrixPlanAdapter, planner_for

        class CustomBlocks(BlockFaultAdversary):
            pass

        class CustomRotation(RotatingSenderCorruptionAdversary):
            pass

        assert type(planner_for(CustomBlocks(faults_per_round=2, seed=7), 6)) is MatrixPlanAdapter
        assert type(planner_for(CustomRotation(alpha=1, seed=7), 6)) is MatrixPlanAdapter


class TestConfigEdgeCases:
    """min_rounds / stop_when_all_decided interplay must match exactly."""

    @pytest.mark.parametrize("min_rounds", [0, 5, 14])
    def test_min_rounds(self, min_rounds):
        reference, fast = run_both(
            ALGORITHMS["ate"], ADVERSARIES["reliable"], n=6, min_rounds=min_rounds
        )
        assert_equivalent(reference, fast)
        # The run must not stop before min_rounds even when decided early.
        assert fast.rounds_executed >= min_rounds

    def test_no_stop_when_all_decided(self):
        reference, fast = run_both(
            ALGORITHMS["ate"],
            ADVERSARIES["random-corruption"],
            n=6,
            stop_when_all_decided=False,
        )
        assert_equivalent(reference, fast)
        assert fast.rounds_executed == MAX_ROUNDS

    def test_min_rounds_equal_to_max_rounds(self):
        reference, fast = run_both(
            ALGORITHMS["ute"], ADVERSARIES["good-phases"], n=6,
            min_rounds=MAX_ROUNDS,
        )
        assert_equivalent(reference, fast)
        assert fast.rounds_executed == MAX_ROUNDS

    def test_none_initial_values_stay_equivalent(self):
        """A degenerate None 'decision' (possible when initial values
        are None) must not flip the fast backend's stop condition: the
        reference engine treats a None decision as still undecided."""
        n = 4
        config = SimulationConfig(max_rounds=8, record_states=False)
        initial_values = {pid: None for pid in range(n)}
        reference = run_simulation(
            ALGORITHMS["ate"](n), initial_values, ReliableAdversary(), config,
            backend="reference",
        )
        fast = run_simulation(
            ALGORITHMS["ate"](n), initial_values, ReliableAdversary(), config,
            backend="fast",
        )
        assert fast.metadata.get("engine") == "fast"
        assert_equivalent(reference, fast)
        assert fast.rounds_executed == 8  # None never counts as decided

    def test_never_deciding_run_hits_horizon(self):
        # A partition keeps |HO| below every threshold half the time:
        # nobody ever decides, both backends run the full horizon.
        reference, fast = run_both(
            ALGORITHMS["ute"], ADVERSARIES["partition"], n=6
        )
        assert_equivalent(reference, fast)
        assert not fast.outcome.termination


class TestRecordByteEquality:
    """Cached rows and reduced records are byte-identical across backends."""

    def _task(self, backend, n=9):
        return RunTask(
            algorithm=AteAlgorithm.symmetric(n=n, alpha=1),
            adversary=PeriodicGoodRoundAdversary(
                inner=RandomCorruptionAdversary(alpha=1, value_domain=(0, 1), seed=11),
                period=4,
            ),
            initial_values=generators.split(n),
            max_rounds=20,
            predicate=AlphaSafePredicate(1),
            key="differential/0000",
            cell={"algorithm": "ate", "n": n},
            run_index=0,
            seed=11,
            backend=backend,
        )

    def test_run_records_byte_identical(self):
        records = {}
        for backend in ("reference", "fast"):
            runner = CampaignRunner()
            records[backend] = runner.run_tasks([self._task(backend)])[0]
        assert isinstance(records["reference"], RunRecord)
        assert records["reference"].as_dict() == records["fast"].as_dict()

    def test_reduced_records_byte_identical(self):
        reduced = {}
        for backend in ("reference", "fast"):
            runner = CampaignRunner()
            reduced[backend] = runner.run_reduced(
                [self._task(backend)], DecisionReducer()
            )[0]
        assert reduced["reference"].as_dict() == reduced["fast"].as_dict()

    def test_cache_entries_shared_across_backends(self, tmp_path):
        """A row cached by one backend is a cache hit for the other."""
        runner_ref = CampaignRunner(cache=str(tmp_path), backend="reference")
        first = runner_ref.run_tasks([self._task(None)])[0]
        assert runner_ref.stats.cache_misses == 1
        runner_fast = CampaignRunner(cache=str(tmp_path), backend="fast")
        second = runner_fast.run_tasks([self._task(None)])[0]
        assert runner_fast.stats.cache_hits == 1
        assert first.as_dict() == second.as_dict()

"""Tests for the lockstep simulation engine."""

import pytest

from repro.adversary import (
    RandomCorruptionAdversary,
    RandomOmissionAdversary,
    ReliableAdversary,
)
from repro.algorithms import AteAlgorithm, UteAlgorithm
from repro.core.machine import HOMachine
from repro.core.parameters import AteParameters
from repro.core.predicates import AlphaSafePredicate
from repro.simulation.engine import (
    SimulationConfig,
    execute_round,
    run_algorithm,
    run_consensus,
    run_machine,
    run_many,
)
from repro.workloads import generators


class TestSimulationConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            SimulationConfig(max_rounds=0)
        with pytest.raises(ValueError):
            SimulationConfig(min_rounds=-1)

    def test_min_rounds_must_not_exceed_max_rounds(self):
        with pytest.raises(ValueError, match="min_rounds"):
            SimulationConfig(max_rounds=5, min_rounds=6)
        # Equality is fine: run exactly max_rounds rounds.
        assert SimulationConfig(max_rounds=5, min_rounds=5).min_rounds == 5


class TestExecuteRound:
    def test_round_record_contains_reception_vectors(self):
        n = 4
        algorithm = AteAlgorithm.symmetric(n=n, alpha=0)
        processes = algorithm.create_all({p: p for p in range(n)})
        record = execute_round(processes, 1, ReliableAdversary())
        assert record.round_num == 1
        assert set(record.receptions) == set(range(n))
        # Everyone intended their own initial value to everyone.
        assert record.receptions[0].intended == {p: p for p in range(n)}
        assert record.receptions[0].received == {p: p for p in range(n)}

    def test_adversary_cannot_invent_senders(self):
        n = 3

        class InventingAdversary(ReliableAdversary):
            def deliver_round(self, round_num, intended):
                received = super().deliver_round(round_num, intended)
                received[0][99] = "ghost"
                return received

        algorithm = AteAlgorithm.symmetric(n=n, alpha=0)
        processes = algorithm.create_all({p: 0 for p in range(n)})
        record = execute_round(processes, 1, InventingAdversary())
        assert 99 not in record.receptions[0].received

    def test_states_recorded_when_requested(self):
        n = 3
        algorithm = AteAlgorithm.symmetric(n=n, alpha=0)
        processes = algorithm.create_all({p: p for p in range(n)})
        record = execute_round(processes, 1, ReliableAdversary(), record_states=True)
        assert record.states_before[0]["x"] == 0
        assert record.states_after[0]["x"] == 0  # smallest most frequent of {0,1,2}
        record = execute_round(processes, 2, ReliableAdversary(), record_states=False)
        assert record.states_before == {}


class TestRunConsensus:
    def test_fault_free_run_satisfies_everything(self):
        n = 6
        result = run_consensus(
            AteAlgorithm.symmetric(n=n, alpha=0), generators.split(n), max_rounds=10
        )
        assert result.all_satisfied
        assert result.agreement and result.integrity and result.termination and result.validity
        assert result.rounds_executed <= 3
        assert result.metrics.messages_sent == n * n * result.rounds_executed
        assert result.metrics.messages_corrupted == 0

    def test_stops_when_all_decided(self):
        n = 6
        result = run_consensus(
            AteAlgorithm.symmetric(n=n, alpha=0), generators.unanimous(n), max_rounds=50
        )
        assert result.rounds_executed == 1

    def test_min_rounds_keeps_running(self):
        n = 6
        config = SimulationConfig(max_rounds=10, min_rounds=5)
        result = run_algorithm(
            AteAlgorithm.symmetric(n=n, alpha=0),
            generators.unanimous(n),
            ReliableAdversary(),
            config=config,
        )
        assert result.rounds_executed == 5
        # Decisions from round 1 are unaffected by the extra rounds.
        assert result.outcome.last_decision_round == 1
        assert result.all_satisfied

    def test_max_rounds_bounds_execution(self):
        n = 6
        result = run_consensus(
            AteAlgorithm.symmetric(n=n, alpha=0),
            generators.split(n),
            RandomOmissionAdversary(drop_probability=1.0, seed=1),
            max_rounds=7,
        )
        assert result.rounds_executed == 7
        assert not result.termination
        assert result.safe

    def test_collection_matches_rounds_executed(self):
        n = 5
        result = run_consensus(
            AteAlgorithm.symmetric(n=n, alpha=1),
            generators.split(n),
            RandomCorruptionAdversary(alpha=1, seed=3),
            max_rounds=20,
        )
        assert result.collection.num_rounds == result.rounds_executed

    def test_check_predicate_helper(self):
        n = 5
        result = run_consensus(
            AteAlgorithm.symmetric(n=n, alpha=1),
            generators.split(n),
            RandomCorruptionAdversary(alpha=1, seed=3),
            max_rounds=20,
        )
        assert result.check_predicate(AlphaSafePredicate(1))
        assert not result.check_predicate(AlphaSafePredicate(0)) or result.metrics.messages_corrupted == 0

    def test_summary_mentions_algorithm_and_adversary(self):
        n = 4
        result = run_consensus(
            AteAlgorithm.symmetric(n=n, alpha=0), generators.unanimous(n), max_rounds=5
        )
        assert "A(" in result.summary()
        assert "reliable" in result.summary()


class TestRunMachine:
    def test_verdict_for_in_range_machine(self):
        n = 6
        params = AteParameters.symmetric(n=n, alpha=1)
        machine = HOMachine(AteAlgorithm(params), AlphaSafePredicate(1))
        verdict = run_machine(
            machine,
            generators.split(n),
            RandomCorruptionAdversary(alpha=1, seed=5),
            config=SimulationConfig(max_rounds=30),
        )
        assert verdict.predicate_held
        assert not verdict.safety_counterexample

    def test_predicate_violation_is_not_counterexample(self):
        n = 6
        params = AteParameters.symmetric(n=n, alpha=0)
        machine = HOMachine(AteAlgorithm(params), AlphaSafePredicate(0))
        verdict = run_machine(
            machine,
            generators.split(n),
            RandomCorruptionAdversary(alpha=2, seed=5),
            config=SimulationConfig(max_rounds=10),
        )
        assert not verdict.predicate_held
        assert not verdict.counterexample


class TestRunMany:
    def test_batch_execution(self):
        n = 5
        results = run_many(
            algorithm_factory=lambda index: AteAlgorithm.symmetric(n=n, alpha=0),
            initial_values_list=[generators.split(n) for _ in range(4)],
            adversary_factory=lambda index: ReliableAdversary(),
            max_rounds=10,
        )
        assert len(results) == 4
        assert all(result.all_satisfied for result in results)


class TestUteEndToEnd:
    def test_fault_free_split_decides_by_second_phase(self):
        n = 8
        result = run_consensus(
            UteAlgorithm.minimal(n=n, alpha=0), generators.split(n), max_rounds=12
        )
        assert result.all_satisfied
        assert result.last_decision_round <= 4

    def test_under_alpha_bounded_corruption(self):
        n = 9
        result = run_consensus(
            UteAlgorithm.minimal(n=n, alpha=2),
            generators.split(n),
            RandomCorruptionAdversary(alpha=2, value_domain=(0, 1), seed=8),
            max_rounds=40,
        )
        assert result.safe


class TestFastPath:
    """record_states=False is the sweep fast path: no snapshots, no profiles."""

    def test_fast_path_trims_metric_profiles_but_keeps_totals(self):
        n = 6
        adversary = RandomCorruptionAdversary(alpha=1, value_domain=(0, 1), seed=4)
        fast = run_consensus(
            AteAlgorithm.symmetric(n=n, alpha=1),
            generators.split(n),
            adversary,
            max_rounds=10,
            record_states=False,
        )
        assert fast.metrics.corruption_per_round == []
        assert fast.metrics.omission_per_round == []
        assert fast.metrics.messages_sent == n * n * fast.rounds_executed
        # The collection still carries the full per-round fault information.
        assert sum(fast.collection.corruption_profile()) == fast.metrics.messages_corrupted

    def test_fast_path_and_slow_path_agree_on_outcome(self):
        n = 6
        make_adversary = lambda: RandomCorruptionAdversary(  # noqa: E731
            alpha=1, value_domain=(0, 1), seed=4
        )
        fast = run_consensus(
            AteAlgorithm.symmetric(n=n, alpha=1), generators.split(n),
            make_adversary(), max_rounds=10, record_states=False,
        )
        slow = run_consensus(
            AteAlgorithm.symmetric(n=n, alpha=1), generators.split(n),
            make_adversary(), max_rounds=10, record_states=True,
        )
        assert fast.outcome.decision_values == slow.outcome.decision_values
        assert fast.outcome.decision_rounds == slow.outcome.decision_rounds
        assert slow.metrics.corruption_per_round == slow.collection.corruption_profile()
